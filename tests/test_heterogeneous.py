"""Tests for the heterogeneous work-partitioning extension."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.core.heterogeneous import HeterogeneousMachine
from repro.core.parameters import MachineParameters
from repro.exceptions import InfeasibleError, ParameterError


def proc(gamma_t, gamma_e, eps=0.0):
    return MachineParameters(
        gamma_t=gamma_t, beta_t=0.0, alpha_t=0.0,
        gamma_e=gamma_e, beta_e=0.0, alpha_e=0.0,
        delta_e=0.0, epsilon_e=eps,
        memory_words=1e9, max_message_words=1e9,
    )


@pytest.fixture
def pool():
    """A GPU-ish fast/hot device, a mid CPU, and a slow/cool core."""
    return HeterogeneousMachine(
        processors=(
            proc(gamma_t=1e-12, gamma_e=2e-10),  # fast, mid-efficiency
            proc(gamma_t=5e-12, gamma_e=4e-10),  # mid, inefficient
            proc(gamma_t=3e-10, gamma_e=1.5e-10),  # slow, most efficient
        )
    )


F = 1e12


class TestMakespan:
    def test_partition_sums(self, pool):
        a = pool.makespan_partition(F)
        assert a.total_flops == pytest.approx(F)

    def test_everyone_finishes_together(self, pool):
        a = pool.makespan_partition(F)
        finishes = [p.gamma_t * f for p, f in zip(pool.processors, a.flops)]
        assert all(t == pytest.approx(a.time, rel=1e-12) for t in finishes)

    def test_aggregate_rate(self, pool):
        a = pool.makespan_partition(F)
        agg = sum(1.0 / p.gamma_t for p in pool.processors)
        assert a.time == pytest.approx(F / agg)

    def test_faster_than_any_single_processor(self, pool):
        a = pool.makespan_partition(F)
        for p in pool.processors:
            assert a.time < p.gamma_t * F

    def test_invalid(self, pool):
        with pytest.raises(ParameterError):
            pool.makespan_partition(-1)


class TestMinEnergy:
    def test_unconstrained_picks_most_efficient(self, pool):
        a = pool.min_energy(F)
        assert a.flops[2] == F  # the 1.5e-10 J/flop core
        assert a.energy == pytest.approx(1.5e-10 * F)

    def test_leakage_changes_the_winner(self):
        # A nominally efficient core with huge leakage loses.
        pool = HeterogeneousMachine(
            processors=(
                proc(1e-12, 2e-10, eps=0.0),
                proc(1e-9, 1e-10, eps=1e3),  # flop_energy = 1e-10 + 1e-6
            )
        )
        a = pool.min_energy(F)
        assert a.flops[0] == F

    def test_deadline_infeasible(self, pool):
        with pytest.raises(InfeasibleError):
            pool.min_energy_partition(F, t_max=1e-12)

    def test_loose_deadline_matches_unconstrained(self, pool):
        slow = pool.min_energy(F)
        a = pool.min_energy_partition(F, t_max=slow.time * 2)
        assert a.energy == pytest.approx(slow.energy)

    def test_deadline_respected(self, pool):
        t_max = pool.min_time(F) * 1.5
        a = pool.min_energy_partition(F, t_max)
        assert a.time <= t_max * (1 + 1e-9)
        assert a.total_flops == pytest.approx(F)

    def test_greedy_matches_linprog(self, pool):
        """The greedy fill must equal the LP optimum:
        min sum e_i F_i  s.t.  0 <= F_i <= T/gamma_t_i, sum F_i = F."""
        t_max = pool.min_time(F) * 2.0
        a = pool.min_energy_partition(F, t_max)
        # Rescale: raw J/flop coefficients (~1e-10) sit below HiGHS's
        # optimality tolerances and would be treated as zero.
        scale = 1e10
        e = [p.flop_energy * scale for p in pool.processors]
        caps = [t_max / p.gamma_t for p in pool.processors]
        res = linprog(
            c=e,
            A_eq=[[1.0] * pool.count],
            b_eq=[F],
            bounds=[(0, c) for c in caps],
            method="highs",
        )
        assert res.success
        assert a.energy == pytest.approx(float(res.fun) / scale, rel=1e-9)

    def test_tight_deadline_costs_more(self, pool):
        cheap = pool.min_energy(F)
        rushed = pool.min_energy_partition(F, pool.min_time(F) * 1.01)
        assert rushed.energy > cheap.energy


class TestFrontier:
    def test_monotone_tradeoff(self, pool):
        frontier = pool.energy_time_frontier(F, points=8)
        times = [a.time for a in frontier]
        energies = [a.energy for a in frontier]
        # Deadlines sweep slow-ward; energy must be non-increasing.
        assert all(b >= a * (1 - 1e-12) for a, b in zip(times, times[1:]))
        assert all(b <= a * (1 + 1e-12) for a, b in zip(energies, energies[1:]))

    def test_endpoints(self, pool):
        frontier = pool.energy_time_frontier(F, points=6)
        assert frontier[0].time == pytest.approx(pool.min_time(F), rel=1e-6)
        assert frontier[-1].energy == pytest.approx(
            pool.min_energy(F).energy, rel=1e-6
        )

    def test_needs_two_points(self, pool):
        with pytest.raises(ParameterError):
            pool.energy_time_frontier(F, points=1)


class TestConstruction:
    def test_empty_pool_rejected(self):
        with pytest.raises(ParameterError):
            HeterogeneousMachine(processors=())

    def test_table2_pool(self):
        """Build a pool straight from Table II entries."""
        from repro.machines.catalog import PROCESSOR_TABLE

        def as_machine(spec):
            return MachineParameters(
                gamma_t=spec.gamma_t, beta_t=0.0, alpha_t=0.0,
                gamma_e=spec.gamma_e, beta_e=0.0, alpha_e=0.0,
                delta_e=0.0, epsilon_e=0.0,
                memory_words=1e9, max_message_words=1e9,
            )

        pool = HeterogeneousMachine(
            processors=tuple(as_machine(s) for s in PROCESSOR_TABLE[:4])
        )
        a = pool.makespan_partition(1e12)
        assert a.total_flops == pytest.approx(1e12)
        # The Sandy Bridge (fastest of the four) takes the largest share.
        assert np.argmax(a.flops) == np.argmin(
            [p.gamma_t for p in pool.processors]
        )
