"""Smoke tests: every example script must run end to end.

Each example's ``main()`` is imported and executed with captured stdout;
the assertions check for the landmark lines so a silently broken example
cannot pass.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "[1] Minimum energy" in out
        assert "[5]" in out
        assert "Perfect strong scaling, measured" in out

    def test_matmul_strong_scaling(self, capsys):
        out = run_example("matmul_strong_scaling.py", capsys)
        assert "Fig. 3" in out
        assert "Measured 2.5D runs" in out

    def test_nbody_energy_frontier(self, capsys):
        out = run_example("nbody_energy_frontier.py", capsys)
        assert "M0" in out
        assert "Race to halt" in out

    def test_codesign_scan(self, capsys):
        out = run_example("codesign_scan.py", capsys)
        assert "Table II" in out
        assert "75 GFLOPS/W is reached after" in out
        assert "Co-design deltas" in out

    def test_strassen_caps_demo(self, capsys):
        out = run_example("strassen_caps_demo.py", capsys)
        assert "Sequential Strassen" in out
        assert "Parallel CAPS" in out

    def test_fft_lu_limits(self, capsys):
        out = run_example("fft_lu_limits.py", capsys)
        assert "naive all-to-all" in out
        assert "2.5D LU cost model" in out

    def test_heterogeneous_pool(self, capsys):
        out = run_example("heterogeneous_pool.py", capsys)
        assert "race-to-halt" in out
        assert "critical path" in out

    def test_nbody_simulation(self, capsys):
        out = run_example("nbody_simulation.py", capsys)
        assert "cold collapse" in out
        assert "symplectic" in out
        assert "NO" not in out  # every parallel run matched the reference
