"""SpmdPool: persistent rank workers, equivalence with run_spmd,
failure recovery, and the mailbox watchdog's absolute deadline."""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import DeadlockError, RankFailedError
from repro.simmpi import SpmdPool, run_spmd, shared_pool
from repro.simmpi.mailbox import Mailbox


def _sum_of_ranks(comm):
    return sum(comm.allgather(comm.rank))


def _bcast_sum(comm, words):
    data = np.arange(words, dtype=float) if comm.rank == 0 else None
    got = comm.bcast(data, root=0)
    return float(np.asarray(got).sum())


class TestSpmdPool:
    def test_matches_run_spmd_results_and_counts(self):
        baseline = run_spmd(8, _bcast_sum, 64)
        with SpmdPool() as pool:
            pooled = pool.run(8, _bcast_sum, 64)
        assert pooled.results == baseline.results
        assert (
            pooled.report.counts_signature()
            == baseline.report.counts_signature()
        )

    def test_workers_are_reused_and_grow_on_demand(self):
        with SpmdPool() as pool:
            assert pool.workers == 0
            pool.run(4, _sum_of_ranks)
            assert pool.workers == 4
            first = set(threading.enumerate())
            pool.run(4, _sum_of_ranks)
            assert pool.workers == 4  # same workers, no respawn
            assert {
                t for t in threading.enumerate() if t.name.startswith("simmpi-pool")
            } == {t for t in first if t.name.startswith("simmpi-pool")}
            pool.run(6, _sum_of_ranks)
            assert pool.workers == 6

    def test_initial_workers(self):
        with SpmdPool(initial_workers=3) as pool:
            assert pool.workers == 3
            assert pool.run(2, _sum_of_ranks).results == (1, 1)

    def test_failure_propagates_and_pool_survives(self):
        def boom(comm):
            if comm.rank == 1:
                raise RuntimeError("kaboom")
            if comm.size > 1:
                comm.recv((comm.rank + 1) % comm.size)  # blocks, then aborted
            return comm.rank

        with SpmdPool() as pool:
            with pytest.raises(RankFailedError, match="kaboom"):
                pool.run(4, boom, timeout=30.0)
            # The pool remains usable after a failed run.
            assert pool.run(4, _sum_of_ranks).results == (6, 6, 6, 6)

    def test_shutdown_is_idempotent_and_final(self):
        pool = SpmdPool()
        pool.run(2, _sum_of_ranks)
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.run(2, _sum_of_ranks)

    def test_run_accepts_engine_kwargs(self):
        with SpmdPool() as pool:
            out = pool.run(
                2,
                _bcast_sum,
                10,
                max_message_words=4,
                payload_mode="copy",
                timeout=30.0,
            )
            assert out.results == (45.0, 45.0)
            assert out.report.ranks[0].messages_sent == 3  # ceil(10/4)

    def test_rejects_negative_initial_workers(self):
        with pytest.raises(ValueError):
            SpmdPool(initial_workers=-1)

    def test_shared_pool_is_a_singleton(self):
        assert shared_pool() is shared_pool()
        assert shared_pool().run(3, _sum_of_ranks).results == (3, 3, 3)


class TestWatchdogDeadline:
    def test_spurious_wakeups_do_not_rearm_timeout(self):
        """A steady stream of non-matching messages must not postpone the
        deadline: the watchdog tracks absolute time, not time since the
        last wake-up."""
        box = Mailbox(0)
        stop = threading.Event()

        def feeder():
            i = 0
            while not stop.is_set():
                box.put(1, "ctx", ("noise", i), i)  # wrong tag: never matches
                i += 1
                time.sleep(0.05)

        t = threading.Thread(target=feeder, daemon=True)
        t.start()
        try:
            start = time.monotonic()
            with pytest.raises(DeadlockError):
                box.get(1, "ctx", "wanted", timeout=0.5)
            elapsed = time.monotonic() - start
            assert elapsed < 2.0, f"watchdog re-armed: waited {elapsed:.2f}s"
        finally:
            stop.set()
            t.join()

    def test_message_arriving_before_deadline_is_delivered(self):
        box = Mailbox(0)

        def late_put():
            time.sleep(0.15)
            box.put(1, "ctx", "tag", "payload")

        t = threading.Thread(target=late_put, daemon=True)
        t.start()
        assert box.get(1, "ctx", "tag", timeout=5.0) == "payload"
        t.join()


class TestPoolWithFaults:
    """Fault injection on the pool substrate: crash isolation behaves
    exactly as on run_spmd, and a failed fault-injected run leaves the
    pool usable."""

    def test_survivable_crash_reported_on_result(self):
        from repro.simmpi import FaultPlan, park_until_crash

        def prog(comm):
            park_until_crash(comm)  # no-op on live ranks
            return comm.rank

        with SpmdPool() as pool:
            out = pool.run(
                4, prog, faults=FaultPlan.single_crash(rank=2, at_op=1),
                timeout=5.0,
            )
            assert out.crashed == (2,)
            assert out.results == (0, 1, None, 3)

    def test_pool_survives_failed_run_with_faults_active(self):
        from repro.exceptions import RankCrashedError
        from repro.simmpi import FaultPlan

        def needs_rank_one(comm):
            if comm.rank == 1:
                comm.add_flops(1.0)  # op 1: the injected crash fires here
                return None
            return comm.recv(1)  # unblocked by the peer-dead abort

        with SpmdPool() as pool:
            with pytest.raises(RankFailedError) as exc:
                pool.run(
                    2, needs_rank_one,
                    faults=FaultPlan.single_crash(rank=1, at_op=1),
                    timeout=5.0,
                )
            # The unabsorbed crash is the primary failure; the survivor's
            # abandoned receive is secondary noise and not reported.
            assert set(exc.value.failures) == {1}
            assert isinstance(exc.value.failures[1], RankCrashedError)
            # The same workers run the next (fault-free) job cleanly.
            out = pool.run(2, _sum_of_ranks)
            assert out.results == (1, 1)
            assert out.crashed == ()
