"""Tests for deterministic fault injection and replication-based recovery."""

import os

import numpy as np
import pytest

from repro.exceptions import (
    DeadlockError,
    ParameterError,
    PeerDeadError,
    RankCrashedError,
    RankFailedError,
)
from repro.algorithms.matmul25d import (
    assemble_resilient,
    matmul_25d,
    matmul_25d_resilient,
)
from repro.analysis.profiler import ModelProfile
from repro.analysis.validation import default_machine
from repro.simmpi.engine import run_spmd
from repro.simmpi.faults import (
    CrashFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    SlowdownFault,
    park_until_crash,
)


class TestFaultPlan:
    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ParameterError):
            FaultPlan([CrashFault(rank=0, at_op=0)])
        with pytest.raises(ParameterError):
            FaultPlan([SlowdownFault(rank=0, factor=0.0, first_op=1, last_op=2)])
        with pytest.raises(ParameterError):
            FaultPlan([SlowdownFault(rank=0, factor=2.0, first_op=3, last_op=2)])
        with pytest.raises(ParameterError):
            FaultPlan([DropFault(src=0, dst=1, nth=-1)])
        with pytest.raises(ParameterError):
            FaultPlan([DelayFault(src=0, dst=1, delay=-1.0)])
        with pytest.raises(ParameterError):
            FaultPlan(["not a fault"])

    def test_validate_checks_world_size(self):
        plan = FaultPlan.single_crash(rank=7, at_op=1)
        with pytest.raises(ParameterError):
            plan.validate(4)
        plan.validate(8)
        with pytest.raises(ParameterError):
            FaultPlan([DropFault(src=0, dst=9)]).validate(4)

    def test_plan_is_immutable_and_boolish(self):
        plan = FaultPlan.single_crash(rank=0, at_op=1)
        with pytest.raises(AttributeError):
            plan.faults = ()
        assert plan
        assert not FaultPlan()

    def test_random_plans_are_deterministic(self):
        kw = dict(size=16, crashes=2, drops=3, duplicates=1, delays=1, slowdowns=2)
        a = FaultPlan.random(seed=7, **kw)
        b = FaultPlan.random(seed=7, **kw)
        assert a.faults == b.faults
        assert FaultPlan.random(seed=8, **kw).faults != a.faults
        assert len(a.crash_ranks()) == 2

    def test_empty_plan_means_no_fault_state(self):
        out = run_spmd(2, lambda comm: comm.rank, faults=FaultPlan())
        assert out.crashed == ()


class TestCrashIsolation:
    def test_survivors_complete_and_victims_reported(self):
        def prog(comm):
            if comm.rank in comm.doomed_ranks():
                park_until_crash(comm)
            comm.add_flops(1.0)
            return comm.rank

        out = run_spmd(4, prog, faults=FaultPlan.single_crash(rank=2, at_op=3))
        assert out.crashed == (2,)
        assert out.results == (0, 1, None, 3)

    def test_crash_fires_at_exact_operation(self):
        seen = {}

        def prog(comm):
            for i in range(10):
                comm.add_flops(1.0)
                seen[comm.rank] = i + 1

        out = run_spmd(2, prog, faults=FaultPlan.single_crash(rank=1, at_op=4))
        assert out.crashed == (1,)
        # at_op=4 kills the 4th metered op before it takes effect.
        assert seen[1] == 3
        assert out.report.ranks[1].flops == 3.0

    def test_unabsorbed_crash_is_the_primary_failure(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send([1.0], 1)
                comm.recv(1)  # never satisfied: rank 1 dies first
            else:
                comm.recv(0)

        with pytest.raises(RankFailedError) as ei:
            run_spmd(
                2,
                prog,
                faults=FaultPlan.single_crash(rank=1, at_op=1),
                timeout=2.0,
            )
        failures = ei.value.failures
        # The crash is reported, not the PeerDeadError noise on rank 0.
        assert isinstance(failures[1], RankCrashedError)
        assert failures[1].rank == 1
        assert not any(isinstance(e, DeadlockError) for e in failures.values())

    def test_receive_from_dead_rank_raises_peer_dead(self):
        errors = {}

        def prog(comm):
            if comm.rank in comm.doomed_ranks():
                park_until_crash(comm)
            try:
                comm.recv(1)
            except PeerDeadError as exc:
                errors[comm.rank] = exc
                raise

        with pytest.raises(RankFailedError):
            run_spmd(
                2, prog, faults=FaultPlan.single_crash(rank=1, at_op=1), timeout=5.0
            )
        assert 0 in errors
        assert isinstance(errors[0], DeadlockError)  # shadowable subclass

    def test_dead_and_alive_queries(self):
        def prog(comm):
            if comm.rank in comm.doomed_ranks():
                park_until_crash(comm)
            assert comm.doomed_ranks() == frozenset({1})
            # Deterministic only after the crash has certainly fired:
            # wait for the dead set via a receive timeout-free check.
            while comm.is_alive(1):
                pass
            assert comm.dead_ranks() == frozenset({1})
            return True

        out = run_spmd(3, prog, faults=FaultPlan.single_crash(rank=1, at_op=1))
        assert out.results == (True, None, True)

    def test_park_is_noop_for_live_ranks(self):
        def prog(comm):
            park_until_crash(comm)
            return comm.rank

        assert run_spmd(2, prog).results == (0, 1)


class TestMessageFaults:
    def test_drop_then_recv_reliable_recovers(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(8.0), 1, tag="x")
                return None
            return comm.recv_reliable(0, tag="x", retry_timeout=0.02).sum()

        plan = FaultPlan([DropFault(src=0, dst=1, nth=0)])
        out = run_spmd(2, prog, faults=plan, timeout=5.0)
        assert out.results[1] == 28.0
        r1 = out.report.ranks[1]
        # The retransmission is metered as recovery on the receiver: one
        # proxy re-send plus the receive.
        assert r1.recovery_words_sent == 8
        assert r1.recovery_messages_sent == 1
        assert r1.recovery_words_received == 8
        assert r1.recovery_messages_received == 1
        # Sender paid once, receiver proxy-paid the retransmission: the
        # word crossed the network twice, arrived once.
        assert out.report.total_words == 16
        assert out.report.total_words_received == 8

    def test_drop_without_retry_times_out(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send([1.0], 1)
                return None
            return comm.recv(0)

        plan = FaultPlan([DropFault(src=0, dst=1, nth=0)])
        with pytest.raises(RankFailedError) as ei:
            run_spmd(2, prog, faults=plan, timeout=0.3)
        assert any(isinstance(e, DeadlockError) for e in ei.value.failures.values())

    def test_recv_reliable_gives_up_on_missing_message(self):
        def prog(comm):
            if comm.rank == 1:
                comm.recv_reliable(0, retry_timeout=0.02, max_retries=2)

        plan = FaultPlan([DelayFault(src=1, dst=0, nth=99)])  # inert, activates state
        with pytest.raises(RankFailedError) as ei:
            run_spmd(2, prog, faults=plan, timeout=0.5)
        assert any(isinstance(e, DeadlockError) for e in ei.value.failures.values())

    def test_recv_reliable_without_faults_is_plain_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send([5.0], 1)
                return None
            return comm.recv_reliable(0)[0]

        out = run_spmd(2, prog)
        assert out.results[1] == 5.0
        assert not out.report.has_recovery

    def test_duplicate_delivers_twice(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send([1.0, 2.0], 1, tag="d")
                return None
            first = comm.recv(0, tag="d")
            second = comm.recv(0, tag="d")
            return list(first), list(second)

        plan = FaultPlan([DuplicateFault(src=0, dst=1, nth=0)])
        out = run_spmd(2, prog, faults=plan, timeout=5.0)
        assert out.results[1] == ([1.0, 2.0], [1.0, 2.0])
        # Sender metered once; receiver metered both copies.
        assert out.report.ranks[0].words_sent == 2
        assert out.report.ranks[1].words_received == 4

    def test_delay_shifts_virtual_arrival(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send([1.0] * 4, 1)
                return None
            comm.recv(0)
            return comm.counter.vtime

        machine = default_machine()
        base = run_spmd(2, prog, machine=machine)
        delayed = run_spmd(
            2,
            prog,
            machine=machine,
            faults=FaultPlan([DelayFault(src=0, dst=1, nth=0, delay=0.5)]),
            timeout=5.0,
        )
        assert delayed.results[1] == pytest.approx(base.results[1] + 0.5)
        # Counts are untouched by delays.
        assert base.report.counts_signature() == delayed.report.counts_signature()

    def test_slowdown_stretches_flop_window(self):
        def prog(comm):
            for _ in range(4):
                comm.add_flops(100.0)
            return comm.counter.vtime

        machine = default_machine()
        base = run_spmd(1, prog, machine=machine)
        slow = run_spmd(
            1,
            prog,
            machine=machine,
            faults=FaultPlan(
                [SlowdownFault(rank=0, factor=3.0, first_op=2, last_op=3)]
            ),
        )
        # Ops 2 and 3 cost 3x: total 1+3+3+1 = 8 instead of 4 units.
        assert slow.results[0] == pytest.approx(base.results[0] * 2.0)
        assert base.report.counts_signature() == slow.report.counts_signature()


class TestDisabledPathIdentity:
    def test_inert_plan_is_bit_identical_to_no_plan(self):
        from repro.algorithms.cannon import cannon_matmul

        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        machine = default_machine()
        base = run_spmd(4, cannon_matmul, a, b, machine=machine)
        inert = FaultPlan([DelayFault(src=0, dst=1, nth=10**9, delay=1.0)])
        hooked = run_spmd(4, cannon_matmul, a, b, machine=machine, faults=inert)
        assert base.report.counts_signature() == hooked.report.counts_signature()
        assert tuple(r.vtime for r in base.report.ranks) == tuple(
            r.vtime for r in hooked.report.ranks
        )
        assert not hooked.report.has_recovery


class TestResilientMatmul:
    n, p, c = 16, 8, 2

    def _operands(self):
        rng = np.random.default_rng(42)
        return (
            rng.standard_normal((self.n, self.n)),
            rng.standard_normal((self.n, self.n)),
        )

    def test_fault_free_matches_numpy(self):
        a, b = self._operands()
        out = run_spmd(self.p, matmul_25d_resilient, a, b, c=self.c)
        assert np.allclose(assemble_resilient(out.results, self.n), a @ b)
        assert not out.report.has_recovery

    def test_recovers_from_non_front_crash(self):
        a, b = self._operands()
        # rank 3 = (i=0, j=1, layer 1): a replica-layer rank.
        out = run_spmd(
            self.p,
            matmul_25d_resilient,
            a,
            b,
            c=self.c,
            faults=FaultPlan.single_crash(rank=3, at_op=5),
            timeout=10.0,
        )
        assert out.crashed == (3,)
        assert np.allclose(assemble_resilient(out.results, self.n), a @ b)
        assert out.report.has_recovery
        assert out.report.total_recovery_flops > 0
        assert out.report.total_recovery_words > 0
        # The buddy (rank 2, layer 0 of the same fiber) carries it.
        assert out.report.ranks[2].recovery_flops > 0

    def test_recovers_from_front_layer_crash(self):
        a, b = self._operands()
        out = run_spmd(
            self.p,
            matmul_25d_resilient,
            a,
            b,
            c=self.c,
            faults=FaultPlan.single_crash(rank=0, at_op=2),
            timeout=10.0,
        )
        assert out.crashed == (0,)
        assert np.allclose(assemble_resilient(out.results, self.n), a @ b)

    def test_recovery_counts_are_deterministic(self):
        a, b = self._operands()
        plan = FaultPlan.single_crash(rank=3, at_op=5)
        sigs = set()
        for _ in range(3):
            out = run_spmd(
                self.p, matmul_25d_resilient, a, b, c=self.c, faults=plan,
                timeout=10.0,
            )
            sigs.add(out.report.counts_signature())
        assert len(sigs) == 1

    def test_rejects_unrecoverable_configurations(self):
        a, b = self._operands()
        # c = 1: a crash loses the only copy.
        with pytest.raises(RankFailedError) as ei:
            run_spmd(
                4,
                matmul_25d_resilient,
                a,
                b,
                c=1,
                faults=FaultPlan.single_crash(rank=1, at_op=1),
                timeout=5.0,
            )
        assert any(
            isinstance(e, ParameterError) for e in ei.value.failures.values()
        )
        # Whole fiber doomed: tiles unrecoverable even at c = 2.
        whole_fiber = FaultPlan(
            [CrashFault(rank=2, at_op=50), CrashFault(rank=3, at_op=50)]
        )
        with pytest.raises(RankFailedError) as ei:
            run_spmd(
                self.p, matmul_25d_resilient, a, b, c=self.c,
                faults=whole_fiber, timeout=5.0,
            )
        assert any(
            isinstance(e, ParameterError) for e in ei.value.failures.values()
        )

    def test_profiler_prices_recovery_terms(self):
        a, b = self._operands()
        machine = default_machine()
        out = run_spmd(
            self.p,
            matmul_25d_resilient,
            a,
            b,
            c=self.c,
            machine=machine,
            faults=FaultPlan.single_crash(rank=3, at_op=5),
            timeout=10.0,
        )
        prof = ModelProfile.from_result(out, machine, label="resilient")
        assert prof.has_recovery
        tt = prof.recovery_time_terms
        et = prof.recovery_energy_terms
        assert tt["gammaF"] == machine.gamma_t * out.report.total_recovery_flops
        assert tt["betaW"] == machine.beta_t * out.report.total_recovery_words
        assert tt["alphaS"] == machine.alpha_t * out.report.total_recovery_messages
        assert et["betaW"] == machine.beta_e * out.report.total_recovery_words
        rendered = prof.render()
        assert "fault-recovery overhead" in rendered
        payload = prof.to_json()
        assert payload["recovery"]["words"] == out.report.total_recovery_words

    def test_fault_free_profile_has_no_recovery_section(self):
        a, b = self._operands()
        machine = default_machine()
        out = run_spmd(self.p, matmul_25d_resilient, a, b, c=self.c)
        prof = ModelProfile.from_result(out, machine)
        assert not prof.has_recovery
        assert "fault-recovery" not in prof.render()
        assert prof.to_json()["recovery"] is None

    def test_classic_and_resilient_agree_fault_free(self):
        a, b = self._operands()
        classic = run_spmd(self.p, matmul_25d, a, b, self.c)
        resilient = run_spmd(self.p, matmul_25d_resilient, a, b, c=self.c)
        got = assemble_resilient(resilient.results, self.n)
        bsz = self.n // 2
        for entry in resilient.results:
            if entry is None:
                continue
            (i, j), _tile = entry
            assert np.allclose(
                got[i * bsz : (i + 1) * bsz, j * bsz : (j + 1) * bsz],
                classic.results[(i * 2 + j) * self.c][:, :],
            )


def _chaos_seeds():
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "1,2,3")
    return [int(s) for s in raw.split(",") if s.strip()]


@pytest.mark.parametrize("seed", _chaos_seeds())
def test_chaos_matrix_single_crash(seed):
    """Seed-swept chaos check (CI sweeps REPRO_CHAOS_SEEDS): a random
    single-rank crash at a random operation is always absorbed at c=2."""
    rng = np.random.default_rng(seed)
    n, p, c = 16, 8, 2
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    victim = int(rng.integers(p))
    at_op = int(rng.integers(1, 40))
    out = run_spmd(
        p,
        matmul_25d_resilient,
        a,
        b,
        c=c,
        faults=FaultPlan.single_crash(rank=victim, at_op=at_op),
        timeout=10.0,
    )
    assert out.crashed == (victim,)
    assert np.allclose(assemble_resilient(out.results, n), a @ b)
    assert out.report.has_recovery


@pytest.mark.parametrize("seed", _chaos_seeds())
def test_chaos_matrix_message_faults(seed):
    """Random drop + duplicate + delay faults on a ring exchange: drops
    recovered by recv_reliable, counts deterministic per seed."""

    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        total = 0.0
        for step in range(3):
            comm.send(np.full(4, float(comm.rank + step)), right, tag=step)
            total += comm.recv_reliable(left, tag=step, retry_timeout=0.02).sum()
        return total

    p = 4
    plan = FaultPlan.random(
        seed=seed, size=p, crashes=0, drops=2, duplicates=1, delays=1
    )
    out1 = run_spmd(p, prog, faults=plan, timeout=10.0)
    out2 = run_spmd(p, prog, faults=plan, timeout=10.0)
    base = run_spmd(p, prog)
    assert out1.results == base.results  # payloads recovered exactly
    assert out1.report.counts_signature() == out2.report.counts_signature()
