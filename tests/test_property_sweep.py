"""Property-based fuzzing of the sweep engine.

Hypothesis generates random collective cells — all ten collectives,
sizes 2..33 (primes included), random roots, random payload shapes,
random message-size caps — and the suite asserts the two bit-identity
contracts the cache rests on:

* **oracle bit-identity** — an executed cell's counts signature and
  per-rank virtual clocks equal the closed-form conformance oracle's,
  whatever the executor path (in-process, shared pool, sharded worker);
* **cache-replay bit-identity** — a record pulled back out of the
  content-addressed cache is byte-for-byte the record that went in, so
  a warm sweep replays exactly what a cold sweep simulated.

Seeded like tests/test_fuzz_simmpi.py: failures reproduce in CI, and
REPRO_FUZZ_SEED=<int> explores a different corner of the space.
"""

import os

from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.observatory.ledger import Ledger
from repro.sweep import (
    COLLECTIVE_OPS,
    RunCache,
    cell_oracle,
    collective_cell,
    execute_cell,
    run_sweep,
)

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20130527"))

#: Conformance's neutral machine: every cost term nonzero so clock and
#: energy drift can't hide behind a zero coefficient.
from repro.conformance.differ import MACHINE  # noqa: E402

#: Sizes 2..33 — primes included, matching the conformance random grid.
size_strategy = st.integers(min_value=2, max_value=33)
pow2_size_strategy = st.sampled_from([2, 4, 8, 16, 32])
words_strategy = st.integers(min_value=1, max_value=40)
payload_strategy = st.sampled_from(["array", "scalar", "str", "dict", "tuple"])


@st.composite
def cell_strategy(draw, ops=COLLECTIVE_OPS):
    op = draw(st.sampled_from(list(ops)))
    p = draw(pow2_size_strategy if op == "alltoall_bruck" else size_strategy)
    kwargs = {
        "words": draw(words_strategy),
        "root": draw(st.integers(min_value=0, max_value=p - 1)),
        "payload": draw(payload_strategy),
        "fastpath": draw(st.booleans()),
    }
    if draw(st.booleans()):
        kwargs["max_message_words"] = float(
            draw(st.integers(min_value=1, max_value=64))
        )
    return collective_cell(op, p, MACHINE, **kwargs)


def _signature(record):
    return [tuple(r) for r in record.counts]


class TestOracleBitIdentity:
    @seed(FUZZ_SEED)
    @given(cell_strategy())
    @settings(max_examples=60, deadline=None)
    def test_executed_counts_and_clocks_match_oracle(self, cell):
        record = execute_cell(cell)
        oracle = cell_oracle(cell)
        assert _signature(record) == [tuple(r) for r in oracle.signature()]
        assert list(record.vtimes) == list(oracle.vtimes)

    @seed(FUZZ_SEED)
    @given(cell_strategy())
    @settings(max_examples=15, deadline=None)
    def test_pool_and_engine_paths_identical(self, cell):
        pooled = execute_cell(cell, use_pool=True)
        fresh = execute_cell(cell, use_pool=False)
        assert _signature(pooled) == _signature(fresh)
        assert pooled.vtimes == fresh.vtimes
        assert pooled.time_terms == fresh.time_terms
        assert pooled.energy_terms == fresh.energy_terms


class TestCacheReplayBitIdentity:
    @seed(FUZZ_SEED)
    @given(cell_strategy())
    @settings(max_examples=25, deadline=None)
    def test_replay_equals_original_byte_for_byte(self, tmp_path_factory, cell):
        cache = RunCache(tmp_path_factory.mktemp("cache"))
        record = execute_cell(cell)
        cache.put(cell, record, "fp")
        replay = cache.get(cell, "fp")
        assert replay is not None
        assert replay.to_json() == record.to_json()

    @seed(FUZZ_SEED)
    @given(st.lists(cell_strategy(), min_size=1, max_size=4, unique_by=lambda c: c.cell_id))
    @settings(max_examples=10, deadline=None)
    def test_warm_sweep_replays_cold_sweep(self, tmp_path_factory, cells):
        tmp = tmp_path_factory.mktemp("sweep")
        cache = RunCache(tmp / "cache")
        cold = run_sweep(cells, cache=cache, workers=0, fingerprint="fp")
        warm_ledger = Ledger(tmp / "warm.jsonl")
        warm = run_sweep(
            cells, ledger=warm_ledger, cache=cache, workers=0, fingerprint="fp"
        )
        assert cold.simulated == len(cells) and warm.hits == len(cells)
        for cid in cold.records:
            assert cold.records[cid].to_json() == warm.records[cid].to_json()
        # ...and what lands in the ledger differs only by provenance tag
        for rec in warm_ledger.records():
            assert rec.extra["sweep"]["cache"] == "hit"
            assert _signature(rec) == _signature(
                cold.records[rec.extra["sweep"]["cell"]]
            )
