"""Tests for the scaling observatory: ledger round-trip, quarantine,
model-fit inversion, drift classification and the record hook's
zero-overhead guarantee."""

import json

import numpy as np
import pytest

from repro.analysis.validation import default_machine
from repro.exceptions import ParameterError
from repro.observatory import (
    DRIFT_TOLERANCES,
    Ledger,
    RunRecord,
    RunRecorder,
    check_sweep,
    diff_against_baseline,
    fit_records,
    inflate_term,
)
from repro.simmpi import run_spmd


def _record_sweep(ledger, n=48, q=6, c_values=(1, 2, 3), machine=None):
    """Record the canonical fixed-tile 2.5D matmul p-sweep (the walk the
    drift tolerance table is calibrated on)."""
    from repro.algorithms.matmul25d import matmul_25d
    from repro.simmpi.pool import shared_pool

    machine = machine or default_machine()
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    tile_words = 3 * (n // q) ** 2
    out = []
    for c in c_values:
        rec = RunRecorder(
            ledger,
            workload="matmul25d",
            params={"n": n, "q": q, "c": c},
            memory_words=tile_words,
        )
        shared_pool().run(
            q * q * c, matmul_25d, a, b, c, machine=machine, record=rec
        )
        out.append(rec.last_record)
    return out


def _diverse_records(ledger):
    """Seven runs across three workloads — enough independent design
    rows to make the 5-constant energy fit well-posed."""
    from repro.algorithms.fft import fft_parallel
    from repro.algorithms.lu import lu_2d

    records = _record_sweep(ledger)
    machine = default_machine()
    rng = np.random.default_rng(1)
    for n, p in ((48, 4), (64, 16)):
        a = rng.standard_normal((n, n))
        rec = RunRecorder(ledger, workload="lu2d", params={"n": n})
        run_spmd(p, lu_2d, a, machine=machine, record=rec)
        records.append(rec.last_record)
    for n, p in ((1024, 4), (4096, 8)):
        x = rng.standard_normal(n)
        rec = RunRecorder(ledger, workload="fft", params={"n": n})
        run_spmd(p, fft_parallel, x, machine=machine, record=rec)
        records.append(rec.last_record)
    return records


class TestLedgerRoundTrip:
    def test_append_query_revives_exact_counts(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        emitted = _record_sweep(ledger, c_values=(1, 2))
        revived = ledger.query(workload="matmul25d")
        assert len(revived) == 2
        for sent, got in zip(emitted, revived):
            assert got.counts_signature() == sent.counts_signature()
            assert got.vtimes == sent.vtimes
            assert got.time_total == sent.time_total
            assert got.energy_total == sent.energy_total
            assert got.machine == sent.machine
            assert got.params == sent.params

    def test_record_carries_provenance(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        (rec,) = _record_sweep(ledger, c_values=(1,))
        assert rec.wall_seconds is not None and rec.wall_seconds > 0
        assert rec.git_sha is None or len(rec.git_sha) == 40
        assert rec.created_at.endswith("Z")
        assert rec.critical_rank is not None

    def test_fit_recovers_constants_to_1e9(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        _diverse_records(ledger)
        fit = fit_records(ledger)
        errors = fit.reference_errors()
        assert errors, "fit found no reference machine"
        for name, err in errors.items():
            assert err <= 1e-9, f"{name}: rel err {err:.3e} > 1e-9"

    def test_fit_json_schema(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        _diverse_records(ledger)
        payload = fit_records(ledger).to_json()
        assert payload["schema"] == "repro_fit/v1"
        assert set(payload["time_constants"]) == {
            "gamma_t", "beta_t", "alpha_t",
        }
        assert len(payload["energy_constants"]) == 5

    def test_bench_records_coexist(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        _record_sweep(ledger, c_values=(1,))
        ledger.append(
            RunRecord.bench("bench_x", extra={"speedup": {"8": 2.0}})
        )
        assert len(ledger.query(kind="run")) == 1
        assert len(ledger.query(kind="bench")) == 1
        # bench records carry no counts and never enter the fit
        fit = fit_records(ledger.query(kind="run"))
        assert fit.n_records == 1


class TestQuarantine:
    def test_corrupt_lines_are_quarantined_not_fatal(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        _record_sweep(ledger, c_values=(1,))
        with ledger.path.open("a", encoding="utf-8") as fh:
            fh.write("this is not json\n")
            fh.write('{"schema": "wrong/v9", "workload": "x", "p": 1}\n')
            fh.write(
                json.dumps(
                    {"schema": "repro_run/v1", "workload": "", "p": 1}
                )
                + "\n"
            )
        _record_sweep(ledger, c_values=(2,))
        records = ledger.records()
        assert len(records) == 2  # both good lines survive
        quarantined = ledger.quarantined()
        assert len(quarantined) >= 3
        reasons = " ".join(q["reason"] for q in quarantined)
        assert "invalid JSON" in reasons
        assert "schema" in reasons
        assert all("line" in q and "content" in q for q in quarantined)

    def test_quarantine_sidecar_location(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.path.parent.mkdir(parents=True, exist_ok=True)
        ledger.path.write_text("garbage\n")
        assert ledger.records() == []
        assert ledger.quarantine_path.name == "ledger.jsonl.quarantine"
        assert ledger.quarantine_path.is_file()

    def test_malformed_counts_row_rejected(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": "repro_run/v1",
            "workload": "x",
            "p": 1,
            "counts": [[1.0, 2]],  # row must have 5 entries
        }
        ledger.path.write_text(json.dumps(payload) + "\n")
        assert ledger.records() == []
        assert "counts row" in ledger.quarantined()[0]["reason"]


class TestDriftClassifier:
    def test_canonical_sweep_is_perfect(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        records = _record_sweep(ledger)
        verdict = check_sweep(records)
        assert verdict.classification == "perfect"
        assert verdict.ok
        assert all(verdict.in_band)

    def test_alpha_inflated_2x_degrades(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        records = _record_sweep(ledger)
        perturbed = inflate_term(records, "T:alphaS", 2.0)
        verdict = check_sweep(perturbed)
        assert verdict.classification == "degraded"
        worst = {tv.term: tv.classification for tv in verdict.terms}
        assert worst["T:alphaS"] == "degraded"
        # the other terms stay clean: the perturbation is localized
        assert worst["T:gammaF"] == "perfect"

    def test_alpha_inflated_4x_breaks(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        records = _record_sweep(ledger)
        verdict = check_sweep(inflate_term(records, "T:alphaS", 4.0))
        assert verdict.classification == "broken"

    def test_every_term_has_tolerances(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        verdict = check_sweep(_record_sweep(ledger))
        for tv in verdict.terms:
            assert tv.term in DRIFT_TOLERANCES
            tol = DRIFT_TOLERANCES[tv.term]
            assert 0 < tol["perfect"] < tol["degraded"] < 1

    def test_needs_two_distinct_p(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        records = _record_sweep(ledger, c_values=(1,))
        with pytest.raises(ParameterError):
            check_sweep(records)

    def test_uniform_inflation_caught_by_baseline_diff(self, tmp_path):
        """A uniform (all-point) slowdown is invisible to flatness by
        design — the baseline diff is the detector for that mode."""
        import dataclasses

        ledger = Ledger(tmp_path / "ledger.jsonl")
        records = _record_sweep(ledger)
        slowed = [
            dataclasses.replace(
                r,
                time_terms={k: 2 * v for k, v in r.time_terms.items()},
                time_total=2 * r.time_total,
                created_at="2099-01-01T00:00:00.000000Z",
            )
            for r in records
        ]
        assert check_sweep(slowed).classification == "perfect"
        diff = diff_against_baseline(slowed[0], records)
        assert diff is not None and diff.regression
        assert diff.time_ratio == pytest.approx(2.0)

    def test_verdict_json(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        payload = check_sweep(_record_sweep(ledger)).to_json()
        assert payload["schema"] == "repro_drift/v1"
        assert payload["classification"] == "perfect"
        assert len(payload["terms"]) == 8


class TestLedgerPowerFields:
    def test_run_records_carry_average_power(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        (rec,) = _record_sweep(ledger, c_values=(1,))
        assert rec.avg_watts == rec.energy_total / rec.time_total
        # recorded runs are untraced: no event logs, so no P(t) peak
        assert rec.peak_watts is None

    def test_traced_run_carries_peak(self):
        from repro.algorithms.cannon import cannon_matmul
        from repro.analysis.powertrace import PowerTrace

        machine = default_machine()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8))
        out = run_spmd(4, cannon_matmul, a, a, machine=machine, trace=True)
        rec = RunRecord.from_result(out, "cannon", machine=machine)
        pt = PowerTrace.from_result(out, machine)
        assert rec.peak_watts == pt.peak_watts
        assert rec.avg_watts == pt.average_watts

    def test_round_trip_preserves_power_fields(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        _record_sweep(ledger, c_values=(1, 2))
        for sent, got in zip(ledger.query(workload="matmul25d"),
                             ledger.query(workload="matmul25d")):
            assert got.avg_watts == sent.avg_watts
            assert got.peak_watts == sent.peak_watts

    def test_pre_power_payloads_still_revive(self, tmp_path):
        """Forward compat: ledgers written before the power fields
        existed must keep loading, with both fields None."""
        ledger = Ledger(tmp_path / "ledger.jsonl")
        (rec,) = _record_sweep(ledger, c_values=(1,))
        payload = rec.to_json()
        del payload["avg_watts"]
        del payload["peak_watts"]
        old = RunRecord.from_json(payload)
        assert old.avg_watts is None and old.peak_watts is None
        assert old.counts_signature() == rec.counts_signature()


class TestPowerFlatness:
    def test_canonical_sweep_is_flat(self, tmp_path):
        from repro.observatory import check_power_flatness

        ledger = Ledger(tmp_path / "ledger.jsonl")
        records = _record_sweep(ledger)
        verdict = check_power_flatness(records)
        assert verdict.classification == "perfect"
        (term,) = verdict.terms
        assert term.term == "P:perProc"
        assert len(term.values) == 3
        assert term.spread < DRIFT_TOLERANCES["P:perProc"]["perfect"]

    def test_leakage_regression_bends_the_sweep(self, tmp_path):
        """Inflating the always-on term on the post-baseline points is
        the paper's forbidden failure — additional power per processor
        — and must cross the degraded then broken thresholds."""
        from repro.observatory import check_power_flatness

        ledger = Ledger(tmp_path / "ledger.jsonl")
        machine = default_machine().replace(epsilon_e=1.0)
        records = _record_sweep(ledger, machine=machine)
        assert check_power_flatness(records).classification == "perfect"
        degraded = check_power_flatness(inflate_term(records, "E:epsT", 2.0))
        assert degraded.classification == "degraded"
        broken = check_power_flatness(inflate_term(records, "E:epsT", 4.0))
        assert broken.classification == "broken"

    def test_derived_ratio_cannot_be_inflated(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        records = _record_sweep(ledger, c_values=(1, 2))
        with pytest.raises(ParameterError, match="derived"):
            inflate_term(records, "P:perProc", 2.0)

    def test_needs_two_distinct_p(self, tmp_path):
        from repro.observatory import check_power_flatness

        ledger = Ledger(tmp_path / "ledger.jsonl")
        records = _record_sweep(ledger, c_values=(1,))
        with pytest.raises(ParameterError):
            check_power_flatness(records)


class TestRecordHookEquivalence:
    def test_record_none_bit_identical(self, tmp_path):
        """The record= hook must not perturb the simulation: counts and
        per-rank virtual clocks are bit-identical with the hook on or
        off."""
        from repro.algorithms.cannon import cannon_matmul

        machine = default_machine()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        base = run_spmd(4, cannon_matmul, a, b, machine=machine)
        ledger = Ledger(tmp_path / "ledger.jsonl")
        rec = RunRecorder(ledger, workload="cannon", params={"n": 8})
        hooked = run_spmd(
            4, cannon_matmul, a, b, machine=machine, record=rec
        )
        assert (
            base.report.counts_signature()
            == hooked.report.counts_signature()
        )
        assert tuple(r.vtime for r in base.report.ranks) == tuple(
            r.vtime for r in hooked.report.ranks
        )
        assert (
            rec.last_record.counts_signature()
            == hooked.report.counts_signature()
        )

    def test_callable_hook(self):
        from repro.algorithms.cannon import cannon_matmul

        got = []
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8))
        run_spmd(
            4,
            cannon_matmul,
            a,
            a,
            machine=default_machine(),
            record=got.append,
        )
        assert len(got) == 1
        assert got[0].workload == "spmd" and got[0].p == 4

    def test_bare_ledger_hook(self, tmp_path):
        from repro.algorithms.cannon import cannon_matmul

        ledger = Ledger(tmp_path / "ledger.jsonl")
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8))
        run_spmd(4, cannon_matmul, a, a, machine=default_machine(),
                 record=ledger)
        assert len(ledger.records()) == 1

    def test_pool_run_records_too(self, tmp_path):
        from repro.algorithms.cannon import cannon_matmul
        from repro.simmpi.pool import shared_pool

        ledger = Ledger(tmp_path / "ledger.jsonl")
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8))
        rec = RunRecorder(ledger, workload="cannon")
        shared_pool().run(
            4, cannon_matmul, a, a, machine=default_machine(), record=rec
        )
        assert rec.last_record is not None
        assert rec.last_record.wall_seconds > 0


class TestDashboard:
    def test_ascii_report(self, tmp_path):
        from repro.observatory.dashboard import render_report

        ledger = Ledger(tmp_path / "ledger.jsonl")
        _record_sweep(ledger)
        ledger.append(
            RunRecord.bench(
                "bench_simmpi_perf", extra={"speedup": {"8": 2.5}}
            )
        )
        text = render_report(ledger)
        assert "scaling observatory" in text
        assert "matmul25d" in text
        assert "PERFECT" in text

    def test_html_is_self_contained(self, tmp_path):
        from repro.observatory.dashboard import render_html

        ledger = Ledger(tmp_path / "ledger.jsonl")
        _record_sweep(ledger)
        html = render_html(ledger)
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "<style>" in html
        assert "http://" not in html and "https://" not in html
        assert "matmul25d" in html

    def test_empty_ledger_report(self, tmp_path):
        from repro.observatory.dashboard import render_html, render_report

        ledger = Ledger(tmp_path / "empty.jsonl")
        assert "0 ledger record" in render_report(ledger)
        assert render_html(ledger).startswith("<!DOCTYPE html>")
