"""Property-based fuzzing of the SPMD substrate.

Hypothesis generates random (but well-formed) communication schedules —
mixed collectives, random payload sizes, random pairings — and the
tests assert the substrate's global invariants: conservation of words
and messages, deterministic counts across repeated runs, and clock
monotonicity under the virtual-time model.
"""

import os

import numpy as np
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.core.parameters import MachineParameters
from repro.simmpi.engine import run_spmd

# Deterministic Hypothesis seed so fuzz failures reproduce in CI; override
# with REPRO_FUZZ_SEED=<int> to explore a different corner of the space.
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20130527"))

MACHINE = MachineParameters(
    gamma_t=1e-9, beta_t=1e-8, alpha_t=1e-6,
    gamma_e=1e-9, beta_e=1e-8, alpha_e=0.0,
    delta_e=1e-9, epsilon_e=0.0,
    memory_words=1e9, max_message_words=64.0,
)

# A schedule is a list of (op, size) steps executed by every rank.
op_strategy = st.lists(
    st.tuples(
        st.sampled_from(
            ["bcast", "reduce", "allreduce", "allgather", "alltoall",
             "barrier", "shift", "gather", "scatter"]
        ),
        st.integers(min_value=1, max_value=40),
    ),
    min_size=1,
    max_size=6,
)


def run_schedule(comm, schedule):
    total = 0.0
    for i, (op, size) in enumerate(schedule):
        data = np.full(size, float(comm.rank + i))
        if op == "bcast":
            got = comm.bcast(data if comm.rank == i % comm.size else None,
                             root=i % comm.size)
            total += float(got.sum())
        elif op == "reduce":
            got = comm.reduce(data, root=i % comm.size)
            total += float(got.sum()) if got is not None else 0.0
        elif op == "allreduce":
            total += float(comm.allreduce(data).sum())
        elif op == "allgather":
            total += sum(float(x.sum()) for x in comm.allgather(data))
        elif op == "alltoall":
            blocks = [np.full(size, float(d)) for d in range(comm.size)]
            total += sum(float(x.sum()) for x in comm.alltoall(blocks))
        elif op == "barrier":
            comm.barrier()
        elif op == "shift":
            total += float(comm.shift(data, 1, tag=("fz", i)).sum())
        elif op == "gather":
            got = comm.gather(data, root=i % comm.size)
            total += sum(float(x.sum()) for x in got) if got else 0.0
        elif op == "scatter":
            objs = (
                [np.full(size, float(r)) for r in range(comm.size)]
                if comm.rank == i % comm.size
                else None
            )
            total += float(comm.scatter(objs, root=i % comm.size).sum())
    return total


class TestScheduleFuzz:
    @seed(FUZZ_SEED)
    @given(st.integers(min_value=1, max_value=6), op_strategy)
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_agreement(self, p, schedule):
        out = run_spmd(p, run_schedule, schedule)
        # Invariant 1: every sent word/message was received.
        assert out.report.words_conserved()
        # Invariant 2: SPMD-symmetric collectives give every rank the
        # same value for the symmetric ops; at minimum, all results are
        # finite numbers.
        assert all(np.isfinite(v) for v in out.results)

    @seed(FUZZ_SEED)
    @given(st.integers(min_value=2, max_value=5), op_strategy)
    @settings(max_examples=10, deadline=None)
    def test_counts_deterministic(self, p, schedule):
        a = run_spmd(p, run_schedule, schedule).report
        b = run_spmd(p, run_schedule, schedule).report
        for ra, rb in zip(a.ranks, b.ranks):
            assert ra.words_sent == rb.words_sent
            assert ra.messages_sent == rb.messages_sent
            assert ra.flops == rb.flops

    @seed(FUZZ_SEED)
    @given(st.integers(min_value=2, max_value=5), op_strategy)
    @settings(max_examples=10, deadline=None)
    def test_virtual_clocks_nonnegative_and_consistent(self, p, schedule):
        out = run_spmd(p, run_schedule, schedule, machine=MACHINE)
        assert all(r.vtime >= 0.0 for r in out.report.ranks)
        # Critical path can never undercut any single rank's own work.
        own = [
            MACHINE.beta_t * r.words_sent + MACHINE.alpha_t * r.messages_sent
            for r in out.report.ranks
        ]
        assert out.report.simulated_time >= max(own) * (1 - 1e-12)

    @seed(FUZZ_SEED)
    @given(
        st.integers(min_value=2, max_value=5),
        op_strategy,
        st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=10, deadline=None)
    def test_message_size_rule(self, p, schedule, m):
        """ceil(W/m) messages: shrinking m never decreases S, never
        changes W."""
        big = run_spmd(p, run_schedule, schedule, max_message_words=1e9).report
        small = run_spmd(p, run_schedule, schedule, max_message_words=m).report
        assert small.total_words == big.total_words
        assert small.total_messages >= big.total_messages


class TestCollectiveValueAgreement:
    @seed(FUZZ_SEED)
    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_allreduce_matches_numpy(self, p, size, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((p, size))

        def prog(comm):
            return comm.allreduce(data[comm.rank].copy())

        out = run_spmd(p, prog)
        expected = data.sum(axis=0)
        for got in out.results:
            assert np.allclose(got, expected)

    @seed(FUZZ_SEED)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_alltoall_transpose_property(self, p, seed):
        """alltoall twice with swapped indexing is the identity."""
        rng = np.random.default_rng(seed)
        payload = rng.standard_normal((p, p, 3))

        def prog(comm):
            mine = [payload[comm.rank, d].copy() for d in range(comm.size)]
            once = comm.alltoall(mine)
            twice = comm.alltoall(once)
            return all(
                np.allclose(twice[d], payload[comm.rank, d]) for d in range(p)
            )

        assert all(run_spmd(p, prog).results)


class TestProcessPoolExecutorFuzz:
    """The sharded (multiprocessing) sweep executor against the
    in-process reference: whatever random cells Hypothesis draws, the
    records coming back over the worker queue must be bit-identical to
    the ones the same cells produce in this process — the cross-process
    face of the determinism invariants above."""

    @seed(FUZZ_SEED)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["barrier", "bcast", "reduce", "allreduce",
                     "reduce_scatter", "allgather", "gather", "scatter",
                     "alltoall"]
                ),
                st.integers(min_value=2, max_value=13),
                st.integers(min_value=1, max_value=24),
            ),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=8, deadline=None)
    def test_sharded_records_match_in_process(self, drawn):
        from repro.conformance.differ import MACHINE
        from repro.sweep import collective_cell, run_sweep

        cells, seen = [], set()
        for op, p, words in drawn:
            cell = collective_cell(op, p, MACHINE, words=words)
            if cell.cell_id not in seen:
                seen.add(cell.cell_id)
                cells.append(cell)
        serial = run_sweep(cells, workers=0)
        sharded = run_sweep(cells, workers=2)
        assert sharded.failed == 0
        assert set(sharded.records) == set(serial.records)
        for cid in serial.records:
            a, b = serial.records[cid], sharded.records[cid]
            assert a.counts == b.counts
            assert a.vtimes == b.vtimes
            assert a.time_terms == b.time_terms
            assert a.energy_terms == b.energy_terms
