"""Tests for the differential conformance harness.

Covers the four contract layers: oracle exactness on hand-derived
closed forms (including the non-power-of-two edges: binomial remainder
rounds, recursive-doubling fold/unfold, uneven reduce_scatter
chunking), oracle-vs-measured bit-identity, divergence *detection*
via a deliberately mis-metered build (the harness must not pass
vacuously), and the CLI exit-code / reproducer contract.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.conformance import (
    BASELINE_VARIANT,
    MACHINE,
    OracleSpec,
    VARIANTS,
    chunk_sizes,
    binomial_send_masks,
    deliberately_perturbed,
    error_cases,
    grid_cases,
    oracle_allgather,
    oracle_allreduce_recursive_doubling,
    oracle_barrier,
    oracle_bcast,
    oracle_reduce_scatter,
    oracle_scenario,
    replay_cell,
    run_cell,
    run_grid,
    smoke_cases,
    string_words,
)
from repro.cli import main
from repro.exceptions import ParameterError
from repro.simmpi import collectives as coll
from repro.simmpi import run_spmd


class TestOracleClosedForms:
    """Oracle exactness against hand-derived values (no simulator)."""

    def test_barrier_dissemination_rounds(self):
        # ceil(log2 p) rounds; every rank sends one zero-word message
        # per round (zero-word payloads still cost one message).
        for p, rounds in ((2, 1), (4, 2), (5, 3), (8, 3), (9, 4)):
            sig = oracle_barrier(OracleSpec(p)).signature()
            assert all(s == (0.0, 0, rounds, 0, rounds) for s in sig)

    def test_bcast_binomial_power_of_two(self):
        # p=8, root 0, 5 words: rank 0 sends at masks 1,2,4 (3 sends);
        # every other rank receives exactly once.
        sig = oracle_bcast(OracleSpec(8), 5, root=0).signature()
        assert sig[0] == (0.0, 15, 3, 0, 0)
        assert all(s[3:] == (5, 1) for s in sig[1:])
        total_sent = sum(s[1] for s in sig)
        assert total_sent == 7 * 5

    def test_bcast_binomial_remainder_rounds(self):
        # Non-power-of-two p=6: pinned against the measured signature.
        sig = oracle_bcast(OracleSpec(6), 3, root=0).signature()
        assert sig == (
            (0.0, 9, 3, 0, 0),
            (0.0, 6, 2, 3, 1),
            (0.0, 0, 0, 3, 1),
            (0.0, 0, 0, 3, 1),
            (0.0, 0, 0, 3, 1),
            (0.0, 0, 0, 3, 1),
        )

    def test_recursive_doubling_fold_edges(self):
        # p=5: one extra rank folds into rank 0 (k=4), then 2 exchange
        # rounds, then the unfold. Pinned non-power-of-two regression.
        sig = oracle_allreduce_recursive_doubling(OracleSpec(5), 4).signature()
        assert sig == (
            (0.0, 12, 3, 12, 3),
            (0.0, 8, 2, 8, 2),
            (0.0, 8, 2, 8, 2),
            (0.0, 8, 2, 8, 2),
            (0.0, 4, 1, 4, 1),
        )

    def test_reduce_scatter_uneven_chunking(self):
        # p=5, 11 words: chunks (3,2,2,2,2); over p-1 ring rounds plus
        # the rotation hop every rank ships each chunk exactly once.
        sig = oracle_reduce_scatter(OracleSpec(5), 11).signature()
        assert sig == tuple((0.0, 11, 5, 11, 5) for _ in range(5))

    def test_allgather_ring_total(self):
        # Ring allgather forwards every other rank's block once.
        sig = oracle_allgather(OracleSpec(7), 4).signature()
        assert all(s == (0.0, 24, 6, 24, 6) for s in sig)

    def test_chunk_sizes_matches_array_split(self):
        for total, parts in ((11, 5), (7, 3), (4, 8), (0, 3), (16, 4)):
            want = [len(c) for c in np.array_split(np.arange(total), parts)]
            assert list(chunk_sizes(total, parts)) == want

    def test_binomial_masks_cover_all_ranks(self):
        # Every non-root vrank is sent to exactly once across the tree.
        for p in (2, 3, 6, 8, 13):
            hit = [0] * p
            for v in range(p):
                for mask in binomial_send_masks(v, p):
                    hit[v + mask] += 1
            assert hit == [0] + [1] * (p - 1)

    def test_message_chunking_in_word_costs(self):
        # max_message_words caps messages: 5 words at m=2 -> 3 messages.
        spec = OracleSpec(2, max_message_words=2.0)
        sig = oracle_bcast(spec, 5, root=0).signature()
        assert sig[0] == (0.0, 5, 3, 0, 0)
        assert sig[1] == (0.0, 0, 0, 5, 3)

    def test_vtimes_use_machine_constants(self):
        spec = OracleSpec(2, machine=MACHINE)
        oc = oracle_bcast(spec, 5, root=0)
        cost = MACHINE.alpha_t * 1 + MACHINE.beta_t * 5
        assert oc.vtimes == (cost, cost)

    def test_scenario_oracle_total_flops(self):
        # summa at p=4, n=16: 2 n^3 total flops, uniform per rank.
        so = oracle_scenario("summa", 4, 16)
        assert so.total_flops == 2.0 * 16**3
        assert so.rank_flops == tuple([2.0 * 16**3 / 4] * 4)

    def test_string_words_convention(self):
        assert string_words("") == 1
        assert string_words("x" * 8) == 1
        assert string_words("x" * 9) == 2


class TestOracleVsMeasured:
    """Oracle counts and vtimes are bit-identical to the simulator."""

    @pytest.mark.parametrize("p", [3, 5, 8])
    def test_allreduce_recursive_doubling(self, p):
        out = run_spmd(
            p,
            lambda comm: coll.allreduce(
                comm, np.arange(6.0), algorithm="recursive_doubling"
            ),
            machine=MACHINE,
        )
        oc = oracle_allreduce_recursive_doubling(
            OracleSpec(p, machine=MACHINE), 6
        )
        assert out.report.counts_signature() == oc.signature()
        assert tuple(r.vtime for r in out.report.ranks) == oc.vtimes

    @pytest.mark.parametrize("p", [3, 6, 8])
    def test_reduce_scatter(self, p):
        out = run_spmd(
            p,
            lambda comm: coll.reduce_scatter(comm, np.arange(11.0)),
            machine=MACHINE,
        )
        oc = oracle_reduce_scatter(OracleSpec(p, machine=MACHINE), 11)
        assert out.report.counts_signature() == oc.signature()
        assert tuple(r.vtime for r in out.report.ranks) == oc.vtimes


class TestDiffer:
    def test_smoke_grid_meets_acceptance_floor(self):
        cases = smoke_cases()
        assert 8 * len(cases) >= 200
        non_pow2 = {c.size for c in cases if c.size & (c.size - 1)}
        assert len(non_pow2) >= 5

    def test_grid_slice_conformant(self):
        cases = [c for c in smoke_cases() if c.size == 3][:6]
        report = run_grid(cases, grid="smoke")
        assert report.ok
        assert report.cells == 8 * len(cases)
        assert "CONFORMANT" in report.summary()

    def test_all_eight_variants_run(self):
        assert len(VARIANTS) == 8
        case = next(c for c in smoke_cases() if c.name.startswith("allreduce/p=5"))
        baseline = run_cell(case, BASELINE_VARIANT)
        for variant, _ in VARIANTS[1:]:
            cell = run_cell(case, variant)
            assert cell.signature == baseline.signature
            assert cell.vtimes == baseline.vtimes
            assert cell.payloads == baseline.payloads

    def test_perturbed_build_diverges(self):
        cases = [c for c in smoke_cases() if c.size == 3][:3]
        with deliberately_perturbed(extra_words=2):
            report = run_grid(cases, grid="smoke", fail_limit=1)
        assert not report.ok
        first = report.first()
        assert first.which in ("counts", "vtimes")
        assert "replay_cell" in first.reproducer
        assert "FIRST DIVERGENCE" in report.summary()

    def test_perturbation_is_scoped(self):
        from repro.simmpi.counters import CostCounter

        original = CostCounter.add_send
        with deliberately_perturbed():
            assert CostCounter.add_send is not original
        assert CostCounter.add_send is original

    def test_replay_cell_reproducer(self, capsys):
        case = smoke_cases()[0]
        assert replay_cell(case.name, grid="smoke") is None
        assert "cell conforms" in capsys.readouterr().out
        with deliberately_perturbed(extra_words=2):
            div = replay_cell(case.name, grid="smoke")
        assert div is not None
        assert div.reference == "oracle"
        assert case.name in capsys.readouterr().out

    def test_replay_cell_unknown_case(self):
        with pytest.raises(ParameterError):
            replay_cell("no-such-case", grid="smoke")

    def test_grid_cases_unknown_grid(self):
        with pytest.raises(ParameterError):
            grid_cases("nope")

    def test_random_grid_deterministic(self):
        a = grid_cases("random", seed=11, cells=6)
        b = grid_cases("random", seed=11, cells=6)
        assert [c.name for c in a] == [c.name for c in b]
        report = run_grid(a, grid="random", seed=11)
        assert report.ok

    @pytest.mark.slow
    def test_smoke_grid_full_run_divergence_free(self):
        """Tier-2: the entire smoke grid (every case x all 8 variants),
        not just the size-3 slice tier-1 samples."""
        cases = smoke_cases()
        report = run_grid(cases, grid="smoke")
        assert report.ok
        assert report.cells == 8 * len(cases)

    @pytest.mark.slow
    def test_full_grid_divergence_free(self):
        """Tier-2: the `full` grid — smoke + extended sizes up to 33 +
        the seeded random sweep — must run divergence-free."""
        cases = grid_cases("full", seed=20130527, cells=20)
        report = run_grid(cases, grid="full", seed=20130527)
        assert report.ok
        assert len(report.non_pow2_sizes) >= 8


class TestBruckErrorConformance:
    """alltoall_bruck at non-power-of-two p: both paths raise the same
    CommunicatorError with the same message on all ranks (pinned)."""

    @pytest.mark.parametrize("p", [3, 6, 12])
    def test_same_error_all_ranks_both_paths(self, p):
        (case,) = error_cases((p,))
        want = tuple(
            (
                r,
                "CommunicatorError",
                f"alltoall_bruck requires a power-of-two size, got {p}",
            )
            for r in range(p)
        )
        for variant in (BASELINE_VARIANT, "fastpath+engine+cow", "fastpath+pool+cow"):
            cell = run_cell(case, variant)
            assert cell.errors == want, variant


class TestConformanceCLI:
    def test_random_grid_exits_zero(self, capsys):
        assert main(["conformance", "--grid", "random", "--seed", "1",
                     "--cells", "4"]) == 0
        assert "CONFORMANT" in capsys.readouterr().out

    def test_json_report(self, capsys):
        assert main(["conformance", "--grid", "random", "--seed", "2",
                     "--cells", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["cells"] == payload["cases"] * 8
        assert payload["divergences"] == []

    def test_demo_divergence_exits_four(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["conformance", "--grid", "random", "--seed", "3",
                  "--cells", "3", "--demo-divergence", "--fail-limit", "1"])
        assert exc.value.code == 4
        out = capsys.readouterr().out
        assert "FIRST DIVERGENCE" in out
        assert "replay_cell" in out

    def test_help_mentions_grids(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["conformance", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "random" in out and "full" in out
