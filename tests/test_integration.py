"""Integration tests: the paper's headline claims, measured end-to-end
on the simulator (real algorithms, real counts, models applied to the
measured counts)."""

import math

import numpy as np
import pytest

from repro.analysis.validation import (
    measure_caps_bandwidth,
    measure_fft_tradeoff,
    measure_lu_latency,
    measure_strong_scaling_matmul,
    measure_strong_scaling_nbody,
)
from repro.core.costs import ClassicalMatMulCosts, NBodyCosts
from repro.simmpi.engine import run_spmd


class TestHeadlineNBody:
    """Perfect strong scaling of the replicated n-body algorithm:
    p grows by c at fixed per-rank memory -> measured-count runtime falls
    ~1/c, measured-count energy ~constant."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return measure_strong_scaling_nbody(n=96, r=4, c_values=(1, 2, 4))

    def test_time_scales_down(self, sweep):
        t = [pt.est_time for pt in sweep]
        assert t[1] < 0.65 * t[0]  # ideal 0.50
        assert t[2] < 0.40 * t[0]  # ideal 0.25

    def test_energy_constant(self, sweep):
        e = [pt.est_energy for pt in sweep]
        for v in e[1:]:
            assert v == pytest.approx(e[0], rel=0.15)

    def test_flops_conserved_across_c(self, sweep):
        f = [pt.total_flops for pt in sweep]
        assert f[1] == pytest.approx(f[0])
        assert f[2] == pytest.approx(f[0])

    def test_per_rank_words_fall_with_c(self, sweep):
        w = [pt.max_words for pt in sweep]
        assert w[2] < w[0]

    def test_measured_words_match_model_shape(self, sweep):
        """W * p should track the model's n^2/M within a small constant.

        The paper's n-body M counts particles (each O(1) words); our
        meter counts words (4 per particle), so convert the measured
        traffic to particles before comparing.
        """
        costs = NBodyCosts(interaction_flops=20.0)
        n = 96
        m_particles = n // 4  # block size at r = 4 teams
        predicted_total = costs.words(n, sweep[0].p, m_particles) * sweep[0].p
        measured_total = sweep[0].max_words / 4.0 * sweep[0].p
        assert 0.2 < measured_total / predicted_total < 5.0


class TestHeadlineMatmul:
    @pytest.fixture(scope="class")
    def sweep(self):
        return measure_strong_scaling_matmul(n=96, q=6, c_values=(1, 2, 3))

    def test_time_scales_down(self, sweep):
        t = [pt.est_time for pt in sweep]
        assert t[1] < 0.70 * t[0]  # ideal 0.50 + bcast constants
        assert t[2] < 0.55 * t[0]  # ideal 0.33

    def test_energy_nearly_constant(self, sweep):
        e = [pt.est_energy for pt in sweep]
        for v in e[1:]:
            assert v == pytest.approx(e[0], rel=0.35)

    def test_per_rank_words_fall_with_c(self, sweep):
        w = [pt.max_words for pt in sweep]
        assert w[1] < w[0]
        assert w[2] < w[0]

    def test_flops_constant(self, sweep):
        f = [pt.total_flops for pt in sweep]
        assert f[1] == pytest.approx(f[0])
        assert f[2] == pytest.approx(f[0])

    def test_measured_vs_model_2d_words(self, sweep):
        costs = ClassicalMatMulCosts()
        n = 96
        pt = sweep[0]  # c=1 run
        M = 3 * (n // 6) ** 2
        predicted = costs.words(n, pt.p, (n // 6) ** 2)
        assert 0.2 < pt.max_words / predicted < 5.0


class TestCapsShape:
    def test_bandwidth_power_law(self):
        pts = measure_caps_bandwidth(n_values=(28,), p_values=(7, 49))
        w7 = next(pt for pt in pts if pt.p == 7).max_words
        w49 = next(pt for pt in pts if pt.p == 49).max_words
        ideal = 7.0 ** (2.0 / math.log2(7.0))  # ~3.99
        assert 2.0 < w7 / w49 < 8.0
        assert w7 / w49 == pytest.approx(ideal, rel=0.8)


class TestFFTNoPerfectScaling:
    @pytest.fixture(scope="class")
    def res(self):
        return measure_fft_tradeoff(n=1024, p_values=(2, 4, 8, 16))

    def test_naive_messages_grow_linearly(self, res):
        s = [pt.max_messages for pt in res["naive"]]
        assert s == [1, 3, 7, 15]

    def test_bruck_messages_grow_logarithmically(self, res):
        s = [pt.max_messages for pt in res["bruck"]]
        assert s == [1, 2, 3, 4]

    def test_bruck_words_exceed_naive(self, res):
        for nv, bk in zip(res["naive"][1:], res["bruck"][1:]):
            if nv.p >= 4:
                assert bk.max_words > nv.max_words

    def test_energy_not_constant_across_p(self, res):
        """No 'no additional energy' region for FFT: estimated energy
        varies across p in either mode."""
        for mode in ("naive", "bruck"):
            e = [pt.est_energy for pt in res[mode]]
            spread = max(e) / min(e)
            assert spread > 1.05


class TestLULatency:
    def test_messages_grow_with_p(self):
        pts = measure_lu_latency(n=48, p_values=(4, 16))
        assert pts[1].max_messages > pts[0].max_messages

    def test_flops_constant_across_p(self):
        pts = measure_lu_latency(n=48, p_values=(4, 16))
        assert pts[0].total_flops == pytest.approx(pts[1].total_flops, rel=1e-6)


class TestCrossAlgorithmConsistency:
    def test_all_matmuls_agree(self, rng):
        """Cannon, SUMMA, 2.5D and CAPS must produce the same product
        (different p requirements, same answer)."""
        from repro.algorithms import (
            cannon_matmul,
            caps_assemble,
            caps_matmul,
            matmul_25d,
            summa_matmul,
        )

        n = 28
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        ref = a @ b

        out = run_spmd(4, summa_matmul, a, b)
        got_summa = np.block(
            [[out.results[0], out.results[1]], [out.results[2], out.results[3]]]
        )
        out = run_spmd(4, cannon_matmul, a, b)
        got_cannon = np.block(
            [[out.results[0], out.results[1]], [out.results[2], out.results[3]]]
        )
        out = run_spmd(8, matmul_25d, a, b, 2)
        got_25d = np.block(
            [[out.results[0], out.results[2]], [out.results[4], out.results[6]]]
        )
        out = run_spmd(7, caps_matmul, a, b)
        got_caps = caps_assemble(list(out.results), n, 7, 0)

        for got in (got_summa, got_cannon, got_25d, got_caps):
            assert np.allclose(got, ref)

    def test_nbody_ring_equals_replicated_c1(self, rng):
        from repro.algorithms import GRAVITY, nbody_replicated, nbody_ring

        n = 32
        pos = rng.standard_normal((n, 3))
        q = np.ones(n)
        out_ring = run_spmd(4, nbody_ring, pos, q, GRAVITY)
        out_repl = run_spmd(4, nbody_replicated, pos, q, 1, GRAVITY)
        assert np.allclose(
            np.vstack(out_ring.results), np.vstack(out_repl.results)
        )
