"""Additional property-based suites over the core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import ClassicalMatMulCosts, NBodyCosts, StrassenMatMulCosts
from repro.core.energy import energy
from repro.core.scaling import perfect_scaling_range, verify_perfect_scaling
from repro.core.timing import runtime
from repro.simmpi.cart import CartComm, factor_grid
from repro.simmpi.engine import run_spmd

from conftest import machine_strategy

COST_MODELS = st.sampled_from(
    [
        ClassicalMatMulCosts(),
        StrassenMatMulCosts(),
        NBodyCosts(interaction_flops=7.0),
    ]
)


class TestScalingTheoremProperty:
    @given(
        machine_strategy(),
        COST_MODELS,
        st.floats(min_value=1e3, max_value=1e6),
        st.floats(min_value=0.01, max_value=1.0),
        st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=5
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_certificate_holds_for_any_in_range_points(
        self, m, costs, n, m_frac, fractions
    ):
        """The headline theorem as a universally quantified property:
        any set of in-range p values certifies perfectly."""
        M_hi = min(m.memory_words, costs.memory_min(n, 1.0))
        M = max(1.0, M_hi * m_frac)
        rng = perfect_scaling_range(costs, n, M)
        if rng.p_max <= rng.p_min * (1 + 1e-9):
            return  # degenerate range at this M
        ps = sorted(
            rng.p_min * (rng.p_max / rng.p_min) ** f for f in fractions
        )
        report = verify_perfect_scaling(costs, m, n, M, ps)
        assert report.is_perfect(tol=1e-6)

    @given(
        machine_strategy(),
        COST_MODELS,
        st.floats(min_value=1e3, max_value=1e6),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_time_product_scaling(self, m, costs, n, m_frac):
        """Inside the range, E*T falls exactly as 1/p — constant energy
        with 1/p runtime, the energy-delay-product corollary."""
        M_hi = min(m.memory_words, costs.memory_min(n, 1.0))
        M = max(1.0, M_hi * m_frac)
        rng = perfect_scaling_range(costs, n, M)
        if rng.p_max <= rng.p_min * 4:
            return
        p1, p2 = rng.p_min, rng.p_min * 4
        edp1 = (
            energy(costs, m, n, p1, M).total * runtime(costs, m, n, p1, M).total
        )
        edp2 = (
            energy(costs, m, n, p2, M).total * runtime(costs, m, n, p2, M).total
        )
        assert edp2 == pytest.approx(edp1 / 4, rel=1e-9)


class TestCartProperties:
    @given(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_coords_bijective(self, p, ndims, seed):
        dims = factor_grid(p, ndims)

        def prog(comm):
            cc = CartComm(comm, dims)
            coords = cc.rank_to_coords(comm.rank)
            return (
                all(0 <= c < d for c, d in zip(coords, dims))
                and cc.coords_to_rank(coords) == comm.rank
            )

        assert all(run_spmd(p, prog).results)

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=-3, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_shift_roundtrip(self, rows, cols, disp):
        """Shifting by +d then -d along any dim restores the data."""
        p = rows * cols

        def prog(comm):
            cc = CartComm(comm, (rows, cols))
            there = cc.shift(np.array([float(comm.rank)]), 0, disp, tag="a")
            back = cc.shift(there, 0, -disp, tag="b")
            return float(back[0]) == float(comm.rank)

        assert all(run_spmd(p, prog).results)

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=2, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_row_col_subs_partition(self, rows, cols):
        """Row and column sub-communicators tile the grid exactly."""
        p = rows * cols

        def prog(comm):
            cc = CartComm(comm, (rows, cols))
            row = cc.sub((False, True))
            col = cc.sub((True, False))
            row_members = row.comm.allgather(comm.rank)
            col_members = col.comm.allgather(comm.rank)
            i, j = cc.coords
            return (
                len(row_members) == cols
                and len(col_members) == rows
                and set(row_members) & set(col_members) == {comm.rank}
            )

        assert all(run_spmd(p, prog).results)
