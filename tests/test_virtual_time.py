"""Tests for the virtual-clock (critical-path) runtime simulation."""

import numpy as np
import pytest

from repro.core.parameters import MachineParameters
from repro.simmpi.engine import run_spmd

MACHINE = MachineParameters(
    gamma_t=1e-9, beta_t=1e-8, alpha_t=1e-6,
    gamma_e=1e-9, beta_e=1e-8, alpha_e=0.0,
    delta_e=1e-9, epsilon_e=0.0,
    memory_words=1e9, max_message_words=1e9,
)


class TestClockBasics:
    def test_no_machine_no_clock(self):
        out = run_spmd(2, lambda comm: comm.add_flops(100))
        assert out.report.simulated_time == 0.0

    def test_compute_advances_clock(self):
        out = run_spmd(1, lambda comm: comm.add_flops(1000), machine=MACHINE)
        assert out.report.simulated_time == pytest.approx(1e-6)

    def test_send_costs_alpha_plus_beta(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100), 1)
            else:
                comm.recv(0)

        out = run_spmd(2, prog, machine=MACHINE)
        expected = MACHINE.alpha_t + 100 * MACHINE.beta_t
        assert out.report.ranks[0].vtime == pytest.approx(expected)
        # Receiver inherits the departure time, pays nothing extra.
        assert out.report.ranks[1].vtime == pytest.approx(expected)

    def test_message_chunking_costs_multiple_alphas(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(250), 1)
            else:
                comm.recv(0)

        out = run_spmd(2, prog, machine=MACHINE, max_message_words=100)
        expected = 3 * MACHINE.alpha_t + 250 * MACHINE.beta_t
        assert out.report.ranks[0].vtime == pytest.approx(expected)

    def test_receiver_not_stalled_by_early_message(self):
        """A message sent at t=0 doesn't delay a receiver already past
        that time."""

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, 1)
            else:
                comm.add_flops(10_000_000)  # 10 ms local work first
                comm.recv(0)

        out = run_spmd(2, prog, machine=MACHINE)
        assert out.report.ranks[1].vtime == pytest.approx(1e-2)


class TestCriticalPath:
    def test_pipeline_chain_accumulates(self):
        """rank r waits for rank r-1: the simulated time is the *sum* of
        stage costs, which the per-rank-max estimate cannot see."""

        def prog(comm):
            if comm.rank > 0:
                comm.recv(comm.rank - 1)
            comm.add_flops(1000)
            if comm.rank < comm.size - 1:
                comm.send(np.zeros(10), comm.rank + 1)

        p = 4
        out = run_spmd(p, prog, machine=MACHINE)
        stage = 1e-6
        hop = MACHINE.alpha_t + 10 * MACHINE.beta_t
        expected = p * stage + (p - 1) * hop
        assert out.report.simulated_time == pytest.approx(expected)
        # Per-rank-max underestimates the chain.
        assert out.report.estimate_time(MACHINE).total < expected

    def test_independent_ranks_run_in_parallel(self):
        out = run_spmd(
            8, lambda comm: comm.add_flops(1000), machine=MACHINE
        )
        assert out.report.simulated_time == pytest.approx(1e-6)

    def test_lu_critical_path_exceeds_per_rank_max(self, rng):
        """The paper's LU observation, measured: dependency chains make
        the critical-path time exceed the per-rank-sum estimate."""
        from repro.algorithms.lu import lu_2d

        n = 48
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        out = run_spmd(16, lu_2d, a, machine=MACHINE)
        assert out.report.simulated_time > out.report.estimate_time(MACHINE).total

    def test_balanced_matmul_close_to_per_rank_max(self, rng):
        """Cannon is bulk-synchronous and balanced: the critical path adds
        little over the per-rank maximum."""
        from repro.algorithms.cannon import cannon_matmul

        n = 48
        a = rng.standard_normal((n, n))
        out = run_spmd(16, cannon_matmul, a, a, machine=MACHINE)
        ratio = out.report.simulated_time / out.report.estimate_time(MACHINE).total
        assert 1.0 <= ratio < 2.0

    def test_barrier_synchronizes_clocks(self):
        def prog(comm):
            if comm.rank == 0:
                comm.add_flops(5_000_000)  # 5 ms head start for others to wait on
            comm.barrier()
            return comm.counter.vtime

        out = run_spmd(4, prog, machine=MACHINE)
        # After the barrier every clock is at least rank 0's work time.
        assert all(v >= 5e-3 for v in out.results)

    def test_strong_scaling_visible_in_simulated_time(self, rng):
        """The headline theorem under the dependency-aware clock: more
        processors with the same tiles -> smaller simulated time."""
        from repro.algorithms.matmul25d import matmul_25d

        n = 96
        a = rng.standard_normal((n, n))
        out1 = run_spmd(36, matmul_25d, a, a, 1, machine=MACHINE)
        out2 = run_spmd(72, matmul_25d, a, a, 2, machine=MACHINE)
        assert out2.report.simulated_time < out1.report.simulated_time


class TestClockAndCountersCoexist:
    def test_counts_unchanged_by_clock(self, rng):
        from repro.algorithms.summa import summa_matmul

        n = 24
        a = rng.standard_normal((n, n))
        plain = run_spmd(4, summa_matmul, a, a)
        clocked = run_spmd(4, summa_matmul, a, a, machine=MACHINE)
        assert plain.report.total_words == clocked.report.total_words
        assert plain.report.total_flops == clocked.report.total_flops

    def test_setup_traffic_costs_no_time(self):
        def prog(comm):
            comm.split(color=comm.rank % 2)
            return comm.counter.vtime

        out = run_spmd(4, prog, machine=MACHINE)
        assert all(v == 0.0 for v in out.results)

    def test_self_sendrecv_costs_no_time(self):
        def prog(comm):
            comm.sendrecv(np.zeros(10), dest=comm.rank, source=comm.rank)
            return comm.counter.vtime

        out = run_spmd(2, prog, machine=MACHINE)
        assert all(v == 0.0 for v in out.results)
