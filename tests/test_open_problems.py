"""Tests for the Section VII open-problem features: average-power
minimization and the LU-latency environment study."""

import math

import numpy as np
import pytest

from repro.core.optimize import NBodyOptimizer
from repro.exceptions import ParameterError
from repro.machines.catalog import JAKETOWN
from repro.machines.presets import (
    CLOUD,
    CLUSTER,
    EMBEDDED,
    ENVIRONMENTS,
    lu_latency_environment_study,
)


@pytest.fixture
def opt(machine):
    return NBodyOptimizer(machine, interaction_flops=10.0)


class TestMinAveragePower:
    def test_returns_feasible_run(self, opt):
        n = 1e6
        run = opt.min_average_power(n)
        assert run.p >= 1.0
        assert 0 < run.M <= min(n, opt.machine.memory_words)
        # The run sits on the 1D (fewest-processors) boundary.
        assert run.p == pytest.approx(max(1.0, n / run.M), rel=1e-9)

    def test_beats_neighboring_memories(self, opt):
        n = 1e6
        run = opt.min_average_power(n)
        best = run.average_power
        for factor in (0.5, 0.8, 1.25, 2.0):
            M = run.M * factor
            if not 1.0 <= M <= min(n, opt.machine.memory_words):
                continue
            p = max(1.0, n / M)
            other = opt.energy(n, M) / opt.time(n, p, M)
            assert other >= best * (1 - 1e-6)

    def test_power_below_fastest_run(self, opt):
        """Minimum power is never above the power of the max-p run."""
        n = 1e6
        p_hi = opt.p_range_at_optimal_memory(n)[1]
        fast = opt.min_runtime(n, p_hi)
        slow = opt.min_average_power(n)
        assert slow.average_power <= fast.average_power

    def test_more_processors_more_power(self, opt):
        """At the optimal M, adding processors increases power linearly —
        the reason min-power runs sit at p = n/M."""
        n = 1e6
        run = opt.min_average_power(n)
        double_p_power = opt.energy(n, run.M) / opt.time(n, run.p * 2, run.M)
        assert double_p_power == pytest.approx(2 * run.average_power, rel=1e-9)

    def test_invalid(self, opt):
        with pytest.raises(ParameterError):
            opt.min_average_power(0)

    def test_jaketown_value_sane(self):
        opt = NBodyOptimizer(
            JAKETOWN.replace(max_message_words=2.0**20), interaction_flops=20.0
        )
        run = opt.min_average_power(1e6)
        # One socket flat out draws ~150 W (gamma_e/gamma_t); min average
        # power cannot exceed a single processor's busy draw by much.
        assert run.average_power < 200.0


class TestEnvironmentPresets:
    def test_all_valid_machines(self):
        for name, m in ENVIRONMENTS.items():
            assert m.gamma_t > 0
            assert m.memory_words > m.max_message_words

    def test_latency_compute_ratio_ordering(self):
        """The defining structure: cloud latency/compute ratio >> cluster
        >> embedded."""
        ratios = {
            name: m.alpha_t / m.gamma_t for name, m in ENVIRONMENTS.items()
        }
        assert ratios["cloud"] > ratios["cluster"] > ratios["embedded"]

    def test_embedded_is_slow_but_cool(self):
        assert EMBEDDED.gamma_t > CLUSTER.gamma_t
        assert EMBEDDED.gamma_e < CLUSTER.gamma_e


class TestLULatencyStudy:
    def test_three_environments(self):
        rows = lu_latency_environment_study()
        assert {r.environment for r in rows} == {"embedded", "cluster", "cloud"}

    def test_cloud_crosses_over_first(self):
        rows = {r.environment: r for r in lu_latency_environment_study()}
        assert rows["cloud"].crossover_p < rows["cluster"].crossover_p
        assert rows["cluster"].crossover_p < rows["embedded"].crossover_p

    def test_crossover_is_half_latency(self):
        from repro.machines.presets import _lu_latency_fraction

        rows = lu_latency_environment_study(n=50_000.0, c=4.0)
        for row in rows:
            if math.isfinite(row.crossover_p):
                frac = _lu_latency_fraction(
                    ENVIRONMENTS[row.environment], 50_000.0, row.crossover_p, 4.0
                )
                assert frac == pytest.approx(0.5, abs=0.01)

    def test_latency_fraction_ordering_at_reference(self):
        rows = {r.environment: r for r in lu_latency_environment_study()}
        assert (
            rows["cloud"].latency_fraction_at_ref
            > rows["cluster"].latency_fraction_at_ref
            >= rows["embedded"].latency_fraction_at_ref
        )

    def test_lu_penalty_at_least_one(self):
        # LU shares matmul's compute and bandwidth; its extra latency can
        # only add time (modulo the ~1e-6 message-count model difference
        # between S = W/m and S = sqrt(cp) at small p).
        for row in lu_latency_environment_study():
            assert row.lu_penalty_at_ref >= 1.0 - 1e-4

    def test_invalid_c(self):
        with pytest.raises(ParameterError):
            lu_latency_environment_study(c=0.5)
