"""Tests for the Section V closed-form n-body optimizer.

Strategy: every closed form is checked twice — against hand algebra on
small cases, and against brute-force/perturbation properties (M0 really
is the argmin; the budget solutions are tight at the boundary; the
quadratics satisfy their defining constraints)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimize import NBodyOptimizer
from repro.exceptions import InfeasibleError, ParameterError

from conftest import machine_strategy


@pytest.fixture
def opt(machine):
    return NBodyOptimizer(machine, interaction_flops=10.0)


def optimizer_strategy():
    return machine_strategy().map(
        lambda m: NBodyOptimizer(m, interaction_flops=10.0)
    )


class TestCoefficients:
    def test_A(self, machine, opt):
        g = machine
        expected = 10.0 * (g.gamma_e + g.gamma_t * g.epsilon_e) + g.delta_e * (
            g.beta_t + g.alpha_t / g.max_message_words
        )
        assert opt.A == pytest.approx(expected)

    def test_B(self, machine, opt):
        assert opt.B == pytest.approx(machine.comm_energy_per_word)

    def test_Dm(self, machine, opt):
        assert opt.Dm == pytest.approx(machine.delta_e * machine.gamma_t * 10.0)

    def test_f_validation(self, machine):
        with pytest.raises(ParameterError):
            NBodyOptimizer(machine, interaction_flops=0)


class TestModelEvaluation:
    def test_energy_formula(self, opt):
        n, M = 1e4, 1e3
        assert opt.energy(n, M) == pytest.approx(
            n**2 * (opt.A + opt.B / M + opt.Dm * M)
        )

    def test_energy_independent_of_p_by_construction(self, opt):
        # The signature doesn't even take p — Eq. (16)'s whole point.
        assert opt.energy(1e4, 1e3) == opt.energy(1e4, 1e3)

    def test_time_formula(self, machine, opt):
        n, p, M = 1e4, 16.0, 1e3
        expected = n**2 * (machine.gamma_t * 10.0 + opt.bt_eff / M) / p
        assert opt.time(n, p, M) == pytest.approx(expected)

    def test_time_scales_inversely_with_p(self, opt):
        assert opt.time(1e4, 32.0, 1e3) == pytest.approx(
            opt.time(1e4, 16.0, 1e3) / 2
        )

    def test_memory_bounds(self, opt):
        lo, hi = opt.memory_bounds(1e4, 16.0)
        assert lo == pytest.approx(1e4 / 16)
        assert hi == pytest.approx(1e4 / 4)

    def test_invalid_inputs(self, opt):
        with pytest.raises(ParameterError):
            opt.energy(0, 10)
        with pytest.raises(ParameterError):
            opt.time(10, 0, 10)


class TestOptimalMemory:
    def test_closed_form(self, opt):
        assert opt.optimal_memory() == pytest.approx(math.sqrt(opt.B / opt.Dm))

    @given(optimizer_strategy())
    @settings(max_examples=50)
    def test_M0_is_argmin(self, o):
        if o.Dm == 0 or o.B == 0:
            return
        M0 = o.optimal_memory()
        n = 1e6
        e0 = o.energy(n, M0)
        for factor in (0.5, 0.9, 1.1, 2.0):
            assert o.energy(n, M0 * factor) >= e0 * (1 - 1e-12)

    def test_free_memory_infeasible(self, machine):
        o = NBodyOptimizer(machine.replace(delta_e=0.0), interaction_flops=1.0)
        with pytest.raises(InfeasibleError):
            o.optimal_memory()

    def test_min_energy_eq18(self, opt):
        n = 1e5
        expected = n**2 * (opt.A + 2 * math.sqrt(opt.B * opt.Dm))
        assert opt.min_energy(n) == pytest.approx(expected)

    def test_min_energy_equals_energy_at_M0(self, opt):
        n = 1e5
        assert opt.min_energy(n) == pytest.approx(opt.energy(n, opt.optimal_memory()))

    def test_p_range_at_M0(self, opt):
        n = 1e6
        M0 = opt.optimal_memory()
        lo, hi = opt.p_range_at_optimal_memory(n)
        assert lo == pytest.approx(n / M0)
        assert hi == pytest.approx(n**2 / M0**2)


class TestMinRuntime:
    def test_uses_max_memory(self, machine, opt):
        n, p = 1e6, 100.0
        run = opt.min_runtime(n, p)
        assert run.M == pytest.approx(min(n / 10.0, machine.memory_words))

    def test_faster_with_more_p(self, opt):
        assert opt.min_runtime(1e6, 400.0).time < opt.min_runtime(1e6, 100.0).time


class TestMinEnergyGivenRuntime:
    def test_loose_deadline_attains_global_min(self, opt):
        n = 1e6
        t_loose = opt.runtime_threshold_for_min_energy(n) * 100
        run = opt.min_energy_given_runtime(n, t_loose)
        assert run.energy == pytest.approx(opt.min_energy(n), rel=1e-9)
        assert run.time <= t_loose * (1 + 1e-9)

    def test_tight_deadline_met_exactly_at_2d_limit(self, opt):
        n = 1e6
        t_tight = opt.runtime_threshold_for_min_energy(n) / 50
        run = opt.min_energy_given_runtime(n, t_tight)
        # The paper's p_min quadratic: deadline met with equality at the
        # 2D limit M = n/sqrt(p).
        assert run.time == pytest.approx(t_tight, rel=1e-6)
        assert run.M == pytest.approx(n / math.sqrt(run.p), rel=1e-9)

    def test_tight_deadline_costs_more_energy(self, opt):
        n = 1e6
        t_tight = opt.runtime_threshold_for_min_energy(n) / 50
        run = opt.min_energy_given_runtime(n, t_tight)
        assert run.energy > opt.min_energy(n)

    @given(optimizer_strategy(), st.floats(min_value=0.001, max_value=0.5))
    @settings(max_examples=30)
    def test_pmin_quadratic_is_tight(self, o, frac):
        if o.Dm == 0 or o.B == 0:
            return
        n = 1e6
        t_max = o.runtime_threshold_for_min_energy(n) * frac
        run = o.min_energy_given_runtime(n, t_max)
        assert run.time <= t_max * (1 + 1e-6)
        # Any fewer processors would miss the deadline.
        t_fewer = o.time(n, run.p * 0.99, n / math.sqrt(run.p * 0.99))
        assert t_fewer > t_max * (1 - 1e-9)

    def test_invalid(self, opt):
        with pytest.raises(ParameterError):
            opt.min_energy_given_runtime(0, 1)


class TestMinRuntimeGivenEnergy:
    def test_budget_below_minimum_infeasible(self, opt):
        n = 1e6
        with pytest.raises(InfeasibleError):
            opt.min_runtime_given_energy(n, opt.min_energy(n) * 0.99)

    def test_budget_met_with_equality(self, opt):
        n = 1e6
        e_max = opt.min_energy(n) * 1.5
        run = opt.min_runtime_given_energy(n, e_max)
        assert run.energy == pytest.approx(e_max, rel=1e-6)
        assert run.M == pytest.approx(n / math.sqrt(run.p), rel=1e-9)

    def test_more_budget_less_time(self, opt):
        n = 1e6
        r1 = opt.min_runtime_given_energy(n, opt.min_energy(n) * 1.2)
        r2 = opt.min_runtime_given_energy(n, opt.min_energy(n) * 2.0)
        assert r2.time < r1.time

    @given(optimizer_strategy(), st.floats(min_value=1.05, max_value=5.0))
    @settings(max_examples=30)
    def test_solution_is_on_2d_boundary(self, o, factor):
        if o.Dm == 0 or o.B == 0:
            return
        n = 1e6
        run = o.min_runtime_given_energy(n, o.min_energy(n) * factor)
        if math.isinf(run.p):
            return
        assert run.M == pytest.approx(n / math.sqrt(run.p), rel=1e-9)


class TestPowerBudgets:
    def test_processor_power_independent_of_n_p(self, opt):
        assert opt.processor_power(1e3) == opt.processor_power(1e3)

    def test_eq19_inversion(self, opt):
        M = 1e3
        p1 = opt.processor_power(M)
        assert opt.max_p_given_total_power(M, 100 * p1) == pytest.approx(100.0)

    def test_total_power_run_meets_budget(self, opt):
        n = 1e6
        budget = 500 * opt.processor_power(opt.optimal_memory())
        run = opt.min_runtime_given_total_power(n, budget)
        used = run.p * opt.processor_power(run.M)
        assert used <= budget * (1 + 1e-6)
        assert used == pytest.approx(budget, rel=1e-2)  # bisection tightness

    def test_total_power_infeasible(self, opt):
        with pytest.raises(InfeasibleError):
            opt.min_runtime_given_total_power(1e6, 1e-30)

    def test_proc_power_cap_is_tight(self, opt):
        M0 = opt.optimal_memory()
        cap = opt.processor_power(M0 * 4)  # a cap binding below M0*4
        m_cap = opt.max_memory_given_proc_power(cap)
        assert opt.processor_power(m_cap) == pytest.approx(cap, rel=1e-9)

    def test_proc_power_cap_monotone(self, opt):
        M0 = opt.optimal_memory()
        cap_small = opt.processor_power(M0 * 2)
        cap_large = opt.processor_power(M0 * 8)
        assert opt.max_memory_given_proc_power(cap_small) < (
            opt.max_memory_given_proc_power(cap_large)
        )

    def test_proc_power_infeasible(self, opt):
        with pytest.raises(InfeasibleError):
            opt.max_memory_given_proc_power(1e-30)

    def test_min_energy_under_generous_proc_cap(self, opt):
        n = 1e6
        generous = opt.processor_power(opt.optimal_memory()) * 10
        run = opt.min_energy_given_proc_power(n, generous)
        assert run.energy == pytest.approx(opt.min_energy(n), rel=1e-9)

    def test_min_energy_under_binding_proc_cap(self, opt):
        n = 1e6
        M0 = opt.optimal_memory()
        binding = opt.processor_power(M0 / 4)
        run = opt.min_energy_given_proc_power(n, binding)
        assert run.M < M0
        assert run.energy > opt.min_energy(n)


class TestEfficiencyTarget:
    def test_formula(self, opt):
        expected = 10.0 / (opt.A + 2 * math.sqrt(opt.B * opt.Dm))
        assert opt.flops_per_joule_optimal() == pytest.approx(expected)

    def test_consistent_with_min_energy(self, opt):
        n = 1e5
        total_flops = 10.0 * n**2
        assert opt.flops_per_joule_optimal() == pytest.approx(
            total_flops / opt.min_energy(n)
        )

    def test_gflops_conversion(self, opt):
        assert opt.gflops_per_watt_optimal() == pytest.approx(
            opt.flops_per_joule_optimal() / 1e9
        )


class TestRaceToHaltObservation:
    def test_race_to_halt_not_optimal(self, machine):
        """Section V-A: minimizing time and minimizing energy select
        different (p, M) — running flat-out costs extra energy whenever
        the memory term is material."""
        opt = NBodyOptimizer(machine, interaction_flops=10.0)
        n = 1e6
        p_max = opt.p_range_at_optimal_memory(n)[1] * 100
        fastest = opt.min_runtime(n, p_max)
        assert fastest.energy > opt.min_energy(n)
