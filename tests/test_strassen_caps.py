"""Tests for sequential Strassen and the parallel CAPS algorithm."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.caps import (
    caps_assemble,
    caps_depth,
    caps_matmul,
    is_power_of_7,
)
from repro.algorithms.strassen import strassen_flop_count, strassen_matmul
from repro.exceptions import ParameterError, RankFailedError
from repro.simmpi.engine import run_spmd


class TestSequentialStrassen:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 48, 56, 96])
    def test_correct(self, n, rng):
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        assert np.allclose(strassen_matmul(a, b, cutoff=8), a @ b)

    def test_cutoff_1_pure_recursion(self, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        assert np.allclose(strassen_matmul(a, b, cutoff=1), a @ b)

    def test_flop_counter_matches_prediction(self, rng):
        for n, cutoff in ((16, 4), (32, 8), (48, 8)):
            a = rng.standard_normal((n, n))
            b = rng.standard_normal((n, n))
            flops = []
            strassen_matmul(a, b, cutoff=cutoff, flop_counter=flops.append)
            assert sum(flops) == pytest.approx(strassen_flop_count(n, cutoff))

    def test_flops_below_classical(self):
        # For large n the recursion must beat 2 n^3.
        n = 1024
        assert strassen_flop_count(n, cutoff=32) < 2.0 * n**3

    def test_flops_follow_omega_asymptotics(self):
        # Doubling n multiplies the flop count by ~7 deep in the recursion.
        f1 = strassen_flop_count(2048, cutoff=2)
        f2 = strassen_flop_count(4096, cutoff=2)
        assert f2 / f1 == pytest.approx(7.0, rel=0.05)

    def test_odd_above_cutoff_rejected(self, rng):
        a = rng.standard_normal((7, 7))
        with pytest.raises(ParameterError):
            strassen_matmul(a, a, cutoff=4)  # 7 odd and above the cutoff

    def test_odd_reached_below_cutoff_ok(self, rng):
        # 12 -> 6 -> 3: the odd order lands under the cutoff, so the
        # recursion bottoms out classically instead of failing.
        a = rng.standard_normal((12, 12))
        b = rng.standard_normal((12, 12))
        assert np.allclose(strassen_matmul(a, b, cutoff=4), a @ b)

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ParameterError):
            strassen_matmul(np.zeros((4, 4)), np.zeros((8, 8)))

    def test_bad_cutoff(self):
        with pytest.raises(ParameterError):
            strassen_matmul(np.eye(4), np.eye(4), cutoff=0)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_matches_numpy_property(self, seed):
        rng = np.random.default_rng(seed)
        n = 32
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        assert np.allclose(strassen_matmul(a, b, cutoff=4), a @ b)


class TestCapsHelpers:
    def test_is_power_of_7(self):
        assert is_power_of_7(1)
        assert is_power_of_7(7)
        assert is_power_of_7(49)
        assert not is_power_of_7(14)
        assert not is_power_of_7(0)

    def test_caps_depth(self):
        assert caps_depth(49, 0) == 2
        assert caps_depth(7, 2) == 3
        assert caps_depth(1, 0) == 0

    def test_caps_depth_rejects_bad_p(self):
        with pytest.raises(ParameterError):
            caps_depth(10, 0)


class TestCapsParallel:
    @pytest.mark.parametrize(
        "p,n,dfs",
        [(1, 16, 0), (1, 16, 2), (7, 14, 0), (7, 28, 0), (7, 28, 1), (49, 28, 0)],
    )
    def test_correct(self, p, n, dfs, rng):
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        out = run_spmd(p, caps_matmul, a, b, dfs)
        c = caps_assemble(list(out.results), n, p, dfs)
        assert np.allclose(c, a @ b)

    def test_classical_base(self, rng):
        n = 14
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        out = run_spmd(7, caps_matmul, a, b, 0, 32, False)
        c = caps_assemble(list(out.results), n, 7, 0)
        assert np.allclose(c, a @ b)

    def test_flops_match_strassen_envelope(self, rng):
        """One BFS level + classical base: total flops = 7 * 2 (n/2)^3
        + 18 (n/2)^2 combination adds."""
        n = 14
        a = rng.standard_normal((n, n))
        out = run_spmd(7, caps_matmul, a, a, 0, 32, False)
        h = n // 2
        expected = 18.0 * h * h + 7 * 2.0 * h**3
        assert out.report.total_flops == pytest.approx(expected)

    def test_invalid_p_rejected(self, rng):
        a = np.eye(14)
        with pytest.raises(RankFailedError):
            run_spmd(6, caps_matmul, a, a)

    def test_indivisible_n_rejected(self, rng):
        a = np.eye(15)  # 15 odd: no quadrants
        with pytest.raises(RankFailedError):
            run_spmd(7, caps_matmul, a, a)

    def test_words_conserved(self, rng):
        a = np.eye(28)
        out = run_spmd(7, caps_matmul, a, a)
        assert out.report.words_conserved()

    def test_dfs_reduces_nothing_at_p1_but_works(self, rng):
        n = 16
        a = rng.standard_normal((n, n))
        out = run_spmd(1, caps_matmul, a, a, 2)
        c = caps_assemble(list(out.results), n, 1, 2)
        assert np.allclose(c, a @ a)
        assert out.report.total_words == 0  # DFS is communication-free

    def test_dfs_costs_more_communication_than_bfs_at_same_p(self, rng):
        """The limited-memory (DFS-first) schedule trades bandwidth for
        memory — W must rise, reproducing the EFLM > EFUM ordering."""
        n = 28
        a = rng.standard_normal((n, n))
        w_bfs = run_spmd(7, caps_matmul, a, a, 0).report.max_words
        w_dfs = run_spmd(7, caps_matmul, a, a, 1).report.max_words
        assert w_dfs > w_bfs

    def test_bandwidth_follows_p_power_law(self, rng):
        """All-BFS CAPS: W ~ n^2 / p^(2/omega0). Going 7 -> 49 ranks at
        fixed n should cut per-rank words by ~7^(2/omega0) ~ 4,
        within implementation constants."""
        n = 28
        a = rng.standard_normal((n, n))
        w7 = run_spmd(7, caps_matmul, a, a, 0).report.max_words
        w49 = run_spmd(49, caps_matmul, a, a, 0).report.max_words
        ideal = 7.0 ** (2.0 / math.log2(7.0))
        assert w7 / w49 == pytest.approx(ideal, rel=0.7)

    def test_negative_dfs_rejected(self):
        a = np.eye(14)
        with pytest.raises(RankFailedError):
            run_spmd(7, caps_matmul, a, a, -1)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=5, deadline=None)
    def test_identity_property(self, seed):
        rng = np.random.default_rng(seed)
        n = 14
        a = rng.standard_normal((n, n))
        out = run_spmd(7, caps_matmul, a, np.eye(n))
        c = caps_assemble(list(out.results), n, 7, 0)
        assert np.allclose(c, a)
