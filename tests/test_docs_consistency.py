"""Documentation consistency guards.

DESIGN.md and EXPERIMENTS.md promise specific bench targets, modules
and commands; these tests fail if the docs rot relative to the tree.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestTreePromises:
    def test_top_level_files_exist(self):
        for name in (
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "pyproject.toml",
            "docs/MODEL.md",
            "docs/SIMULATOR.md",
        ):
            assert (ROOT / name).is_file(), name

    def test_examples_promised_by_readme_exist(self):
        readme = read("README.md")
        for script in re.findall(r"`([a-z_]+\.py)`", readme):
            assert (ROOT / "examples" / script).is_file(), script

    def test_bench_targets_in_design_exist(self):
        design = read("DESIGN.md")
        for target in set(re.findall(r"benchmarks/(bench_[a-z0-9_]+\.py)", design)):
            assert (ROOT / "benchmarks" / target).is_file(), target

    def test_bench_modules_in_experiments_exist(self):
        exps = read("EXPERIMENTS.md")
        for target in set(re.findall(r"`(bench_[a-z0-9_]+\.py)`", exps)):
            assert (ROOT / "benchmarks" / target).is_file(), target

    def test_every_bench_module_is_indexed_in_experiments_or_design(self):
        docs = read("EXPERIMENTS.md") + read("DESIGN.md")
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            assert path.name in docs, f"{path.name} not documented"

    def test_every_source_module_has_a_docstring(self):
        for path in (ROOT / "src").rglob("*.py"):
            text = path.read_text().lstrip()
            assert text.startswith('"""') or text.startswith("'''"), (
                f"{path} lacks a module docstring"
            )

    def test_cli_commands_promised_by_docs_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(a for a in parser._actions if hasattr(a, "choices") and a.choices)
        registered = set(sub.choices)
        readme = read("README.md")
        for cmd in re.findall(r"python -m repro (\w+)", readme):
            assert cmd in registered, cmd


class TestPublicApiImports:
    def test_top_level_all_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_importable(self):
        import repro.algorithms
        import repro.analysis
        import repro.core
        import repro.machines
        import repro.sequential
        import repro.simmpi

        for mod in (
            repro.core,
            repro.simmpi,
            repro.algorithms,
            repro.machines,
            repro.analysis,
            repro.sequential,
        ):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name}"
