"""Sweep engine tests: planner determinism, content-addressed cache,
sharded executor, crash-requeue, and the single-writer ledger funnel."""

import json
import multiprocessing
import threading

import pytest

from repro.exceptions import ParameterError, SweepError
from repro.observatory.ledger import Ledger
from repro.sweep import (
    Cell,
    RunCache,
    SweepSpec,
    cache_key,
    cell_oracle,
    code_fingerprint,
    collective_cell,
    execute_cell,
    plan_cells,
    run_sweep,
    smoke_spec,
)
from repro.sweep.cache import FINGERPRINT_ENV


def _machine_dict():
    from repro.analysis.validation import default_machine

    m = default_machine()
    return {
        k: float(getattr(m, k))
        for k in (
            "gamma_t", "beta_t", "alpha_t", "gamma_e", "beta_e",
            "alpha_e", "delta_e", "epsilon_e", "memory_words",
            "max_message_words",
        )
    }


class TestPlanner:
    def test_smoke_spec_matches_observatory_walk(self):
        cells = smoke_spec(48).cells()
        assert [c.p for c in cells] == [36, 72, 108]
        assert [c.params["c"] for c in cells] == [1, 2, 3]
        for c in cells:
            assert c.workload == "matmul25d"
            assert c.params["n"] == 48 and c.params["q"] == 6
            assert c.memory_words == 3 * (48 // 6) ** 2
            assert c.label == f"matmul25d(n=48, c={c.params['c']})"

    def test_cell_ids_are_deterministic_and_distinct(self):
        a = smoke_spec(48).cells()
        b = smoke_spec(48).cells()
        assert [c.cell_id for c in a] == [c.cell_id for c in b]
        assert len({c.cell_id for c in a}) == 3

    def test_cell_id_changes_with_any_identity_field(self):
        base = collective_cell("bcast", 8, _machine_dict(), words=9)
        assert (
            collective_cell("bcast", 8, _machine_dict(), words=10).cell_id
            != base.cell_id
        )
        assert (
            collective_cell("bcast", 9, _machine_dict(), words=9).cell_id
            != base.cell_id
        )
        bumped = dict(_machine_dict())
        bumped["beta_t"] *= 2
        assert collective_cell("bcast", 8, bumped, words=9).cell_id != base.cell_id
        assert (
            collective_cell(
                "bcast", 8, _machine_dict(), words=9, fastpath=False
            ).cell_id
            != base.cell_id
        )

    def test_cell_json_roundtrip(self):
        cell = collective_cell(
            "gather", 6, _machine_dict(), words=5, root=2,
            max_message_words=16, node_size=3,
        )
        clone = Cell.from_json(json.loads(json.dumps(cell.to_json())))
        assert clone == cell
        assert clone.cell_id == cell.cell_id

    def test_spec_json_roundtrip(self):
        spec = SweepSpec(workload="fft", n=64, p_values=(2, 4, 8))
        clone = SweepSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert clone == spec
        assert [c.cell_id for c in clone.cells()] == [
            c.cell_id for c in spec.cells()
        ]

    def test_plan_cells_concatenates_specs(self):
        cells = plan_cells(
            [smoke_spec(24), SweepSpec(workload="fft", n=64, p_values=(2,))]
        )
        assert len(cells) == 4

    def test_rejects_unknown_workload(self):
        with pytest.raises(ParameterError):
            SweepSpec(workload="nosuch", p_values=(2,))

    def test_rejects_qc_on_non_matmul(self):
        with pytest.raises(ParameterError):
            SweepSpec(workload="fft", n=64, q=2, c_values=(1,))

    def test_rejects_non_dividing_c(self):
        with pytest.raises(ParameterError):
            SweepSpec(workload="matmul25d", n=24, q=6, c_values=(4,))

    def test_rejects_bad_collective(self):
        with pytest.raises(ParameterError):
            collective_cell("nosuch", 4, _machine_dict())

    def test_rejects_bruck_on_non_pow2(self):
        with pytest.raises(ParameterError):
            collective_cell("alltoall_bruck", 6, _machine_dict())

    def test_rejects_out_of_range_root(self):
        with pytest.raises(ParameterError):
            collective_cell("bcast", 4, _machine_dict(), root=7)

    def test_rejects_unknown_mode_flag(self):
        with pytest.raises(ParameterError):
            Cell(
                workload="fft", p=2, params={"n": 64},
                machine=_machine_dict(), mode={"bogus": 1},
            )


class TestCache:
    def test_key_depends_on_fingerprint(self):
        cell = collective_cell("barrier", 4, _machine_dict())
        assert cache_key(cell, "fp-a") != cache_key(cell, "fp-b")
        assert cache_key(cell, "fp-a") == cache_key(cell, "fp-a")

    def test_fingerprint_env_override(self, monkeypatch):
        monkeypatch.setenv(FINGERPRINT_ENV, "pinned")
        assert code_fingerprint() == "pinned"
        monkeypatch.delenv(FINGERPRINT_ENV)
        real = code_fingerprint()
        assert len(real) == 64 and real != "pinned"

    def test_put_get_roundtrip_is_bit_identical(self, tmp_path):
        cell = collective_cell("allreduce", 5, _machine_dict(), words=7)
        record = execute_cell(cell)
        cache = RunCache(tmp_path / "cache")
        cache.put(cell, record, "fp")
        replay = cache.get(cell, "fp")
        assert replay is not None
        assert replay.to_json() == record.to_json()

    def test_get_misses_across_fingerprints(self, tmp_path):
        cell = collective_cell("allreduce", 5, _machine_dict(), words=7)
        cache = RunCache(tmp_path / "cache")
        cache.put(cell, execute_cell(cell), "fp-old")
        assert cache.get(cell, "fp-new") is None
        assert cache.get(cell, "fp-old") is not None

    def test_gc_removes_only_stale(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        old = collective_cell("barrier", 4, _machine_dict())
        new = collective_cell("barrier", 5, _machine_dict())
        cache.put(old, execute_cell(old), "fp-old")
        cache.put(new, execute_cell(new), "fp-new")
        assert cache.stats("fp-new").stale == 1
        assert cache.gc("fp-new") == 1
        assert cache.get(new, "fp-new") is not None
        assert cache.stats("fp-new").entries == 1

    def test_gc_drop_all(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        cell = collective_cell("barrier", 4, _machine_dict())
        cache.put(cell, execute_cell(cell), "fp")
        assert cache.gc("fp", drop_all=True) == 1
        assert cache.stats("fp").entries == 0

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        cell = collective_cell("barrier", 4, _machine_dict())
        key = cache.put(cell, execute_cell(cell), "fp")
        path = cache._entry_path(key)
        path.write_text("{ not json")
        assert cache.get(cell, "fp") is None


class TestExecutor:
    def test_serial_and_sharded_records_identical(self, tmp_path):
        cells = smoke_spec(24).cells()
        serial = run_sweep(cells, workers=0)
        sharded = run_sweep(cells, workers=2)
        assert set(serial.records) == set(sharded.records)
        for cid in serial.records:
            a, b = serial.records[cid], sharded.records[cid]
            assert a.counts == b.counts
            assert a.vtimes == b.vtimes
            assert a.time_terms == b.time_terms
            assert a.energy_terms == b.energy_terms

    def test_warm_run_hits_every_cell_and_is_faster(self, tmp_path):
        cells = smoke_spec(24).cells()
        cache = RunCache(tmp_path / "cache")
        cold = run_sweep(cells, cache=cache, workers=2)
        warm = run_sweep(cells, cache=cache, workers=2)
        assert cold.simulated == 3 and cold.hits == 0
        assert warm.hits == 3 and warm.simulated == 0
        assert warm.elapsed < cold.elapsed / 5

    def test_ledger_funnel_annotates_provenance(self, tmp_path):
        cells = smoke_spec(24).cells()
        cache = RunCache(tmp_path / "cache")
        led1 = Ledger(tmp_path / "cold.jsonl")
        run_sweep(cells, ledger=led1, cache=cache, workers=2)
        led2 = Ledger(tmp_path / "warm.jsonl")
        run_sweep(cells, ledger=led2, cache=cache, workers=0)
        tags1 = [r.extra["sweep"]["cache"] for r in led1.records()]
        tags2 = [r.extra["sweep"]["cache"] for r in led2.records()]
        assert tags1 == ["miss"] * 3
        assert tags2 == ["hit"] * 3
        # provenance never leaks into the cached (replayable) record
        for cell in cells:
            assert "sweep" not in (cache.get(cell).extra or {})

    def test_crash_requeue_recovers_all_cells(self, tmp_path):
        cells = smoke_spec(24).cells()
        led = Ledger(tmp_path / "l.jsonl")
        out = run_sweep(cells, ledger=led, workers=2, crash_plan={0: 1})
        assert out.requeues == 1
        assert out.failed == 0
        assert len(out.records) == 3
        assert len(led.records()) == 3
        assert not led.quarantined()

    def test_crash_requeue_records_match_clean_run(self):
        cells = smoke_spec(24).cells()
        clean = run_sweep(cells, workers=0)
        crashed = run_sweep(cells, workers=2, crash_plan={0: 0, 1: 0})
        assert crashed.requeues == 2
        for cid in clean.records:
            assert clean.records[cid].counts == crashed.records[cid].counts
            assert clean.records[cid].vtimes == crashed.records[cid].vtimes

    def test_requeue_budget_exhaustion_raises_with_partial(self):
        cells = smoke_spec(24).cells()
        with pytest.raises(SweepError) as exc:
            run_sweep(cells, workers=1, max_requeues=0, crash_plan={0: 0})
        outcome = exc.value.outcome
        assert outcome.failed == 3
        assert all(o.error and "requeue" in o.error for o in outcome.outcomes)

    def test_failed_cell_reported_not_raised(self, tmp_path):
        bad = SweepSpec(workload="fft", n=100, p_values=(2,)).cells()
        good = SweepSpec(workload="fft", n=64, p_values=(2,)).cells()
        out = run_sweep(good + bad, workers=2)
        assert out.failed == 1 and out.simulated == 1
        failed = next(o for o in out.outcomes if o.status == "failed")
        assert "power-of-two" in failed.error

    def test_duplicate_cells_rejected(self):
        cells = smoke_spec(24).cells()
        with pytest.raises(SweepError):
            run_sweep(cells + cells[:1], workers=0)

    def test_spawn_context_also_works(self, tmp_path):
        # The worker entry point must be picklable for spawn contexts.
        cells = SweepSpec(workload="fft", n=64, p_values=(2, 4)).cells()
        out = run_sweep(cells, workers=2, mp_context="spawn")
        assert out.simulated == 2 and out.failed == 0

    def test_outcome_json_schema(self):
        cells = SweepSpec(workload="fft", n=64, p_values=(2,)).cells()
        payload = run_sweep(cells, workers=0).to_json()
        assert payload["schema"] == "repro_sweep_outcome/v1"
        assert payload["cells"] == 1
        assert payload["outcomes"][0]["status"] == "simulated"


class TestCollectiveCells:
    def test_execute_matches_oracle_signature(self):
        cell = collective_cell("reduce_scatter", 6, _machine_dict(), words=11)
        record = execute_cell(cell)
        oracle = cell_oracle(cell)
        assert [tuple(r) for r in record.counts] == [
            tuple(r) for r in oracle.signature()
        ]
        assert list(record.vtimes) == list(oracle.vtimes)

    def test_oracle_rejects_scenario_cells(self):
        with pytest.raises(ParameterError):
            cell_oracle(smoke_spec(24).cells()[0])


class TestLargeScaleSweeps:
    """Tier-2 (slow marker): the executor and oracles at p >= 1024 —
    the scale the paper's replication-band claims actually live at."""

    @pytest.mark.slow
    def test_p1024_collectives_match_oracles(self):
        for op in ("allreduce", "bcast", "reduce_scatter"):
            cell = collective_cell(op, 1024, _machine_dict(), words=9)
            record = execute_cell(cell)
            oracle = cell_oracle(cell)
            assert [tuple(r) for r in record.counts] == [
                tuple(r) for r in oracle.signature()
            ]
            assert list(record.vtimes) == list(oracle.vtimes)

    @pytest.mark.slow
    def test_p1024_sharded_sweep_matches_serial(self, tmp_path):
        cells = [
            collective_cell("allreduce", 1024, _machine_dict(), words=w)
            for w in (3, 9)
        ]
        serial = run_sweep(cells, workers=0)
        cache = RunCache(tmp_path / "cache")
        sharded = run_sweep(cells, cache=cache, workers=2)
        warm = run_sweep(cells, cache=cache, workers=2)
        assert warm.hits == len(cells)
        for cid in serial.records:
            assert serial.records[cid].counts == sharded.records[cid].counts
            assert sharded.records[cid].to_json() == warm.records[cid].to_json()


class TestLedgerSingleWriter:
    """The funnel invariant, stress-tested: many concurrent appenders
    (threads and processes) may hammer one ledger file without
    interleaved or corrupt lines — which is why routing every shard's
    records through the parent is safe even under crash-requeue."""

    def test_concurrent_thread_appends_never_corrupt(self, tmp_path):
        led = Ledger(tmp_path / "ledger.jsonl")
        cells = SweepSpec(workload="fft", n=64, p_values=(2,)).cells()
        record = execute_cell(cells[0])

        def hammer(k: int):
            for _ in range(25):
                led.append(record)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        got = led.records()
        assert len(got) == 200
        assert not led.quarantined()
        assert all(r.counts == record.counts for r in got)

    def test_concurrent_process_appends_never_corrupt(self, tmp_path):
        led_path = tmp_path / "ledger.jsonl"
        led = Ledger(led_path)
        cells = SweepSpec(workload="fft", n=64, p_values=(2,)).cells()
        record = execute_cell(cells[0])
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(
                target=_hammer_ledger, args=(str(led_path), record.to_json())
            )
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        got = led.records()
        assert len(got) == 100
        assert not led.quarantined()
        sigs = {json.dumps(r.counts) for r in got}
        assert len(sigs) == 1


def _hammer_ledger(path: str, record_json: dict) -> None:
    """Top-level so fork/spawn contexts can run it."""
    from repro.observatory.ledger import Ledger, RunRecord

    led = Ledger(path)
    rec = RunRecord.from_json(record_json)
    for _ in range(25):
        led.append(rec)
