"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        )
        assert set(sub.choices) == {
            "table1",
            "table2",
            "fig3",
            "fig4",
            "fig6",
            "fig7",
            "validate",
            "questions",
            "report",
            "trace",
            "profile",
            "faults",
            "power",
            "observe",
            "conformance",
        }

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_trace_help_lists_workloads(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["trace", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for name in ("matmul25d", "cannon", "summa", "caps", "nbody", "fft"):
            assert name in out


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "core_freq_ghz" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Sandy Bridge" in out and "GFLOPS/W" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "knees" in out and "classical W*p" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "M0" in out and "admissible" in out

    def test_fig6(self, capsys):
        assert main(["fig6", "--generations", "3"]) == 0
        out = capsys.readouterr().out
        assert "gamma_e" in out

    def test_fig7(self, capsys):
        assert main(["fig7", "--generations", "6"]) == 0
        out = capsys.readouterr().out
        assert "75 GFLOPS/W crossed at generation 5.56" in out

    def test_questions(self, capsys):
        assert main(["questions"]) == 0
        out = capsys.readouterr().out
        assert "[1]" in out and "[5]" in out and "GFLOPS/W" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "matmul25d c=1" in out and "nbody c=1" in out


class TestTraceCommand:
    def test_trace_matmul25d_writes_perfetto_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "matmul25d", "--p", "8", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "T_sim" in out
        data = json.loads(out_path.read_text())
        events = data["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert sorted(e["tid"] for e in meta) == list(range(8))
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for e in complete:
            assert {"ts", "dur", "pid", "tid", "name"} <= e.keys()

    def test_trace_nbody_runs(self, capsys):
        assert main(["trace", "nbody", "--p", "2", "--n", "8"]) == 0
        assert "nbody" in capsys.readouterr().out

    def test_trace_rejects_bad_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "nosuch"])

    def test_trace_rejects_invalid_p(self):
        # p=5 is not q^2 c for any valid (q, c)
        with pytest.raises(SystemExit) as exc:
            main(["trace", "matmul25d", "--p", "5"])
        assert "q^2 c" in str(exc.value)

    def test_trace_rejects_invalid_n(self):
        # fft needs a power-of-two signal length
        with pytest.raises(SystemExit) as exc:
            main(["trace", "fft", "--p", "2", "--n", "100"])
        assert "power-of-two" in str(exc.value)

    def test_trace_json_mode(self, capsys):
        import json

        assert main(["trace", "nbody", "--p", "2", "--n", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro_trace/v1"
        assert payload["workload"] == "nbody" and payload["p"] == 2
        assert payload["dropped_events"] == 0
        assert payload["critical_path"]["total"] > 0
        assert payload["breakdown"]


class TestProfileCommand:
    def test_profile_human_mode(self, capsys):
        assert main(["profile", "cannon", "--p", "4", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "model profile: cannon" in out
        assert "Eq. (1) time per term" in out
        assert "Eq. (2) energy per term" in out

    def test_profile_json_mode(self, capsys):
        import json

        assert main(["profile", "nbody", "--p", "2", "--n", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro_profile/v1"
        assert payload["p"] == 2
        assert payload["time"]["total"] == sum(
            payload["time"]["terms"].values()
        )
        assert payload["phases"]  # profile always traces

    def test_profile_metrics_out(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        assert main(
            [
                "profile",
                "nbody",
                "--p",
                "2",
                "--n",
                "8",
                "--metrics-out",
                str(prom),
            ]
        ) == 0
        text = prom.read_text()
        assert "# TYPE simmpi_sent_words_total counter" in text
        assert "simmpi_message_words_bucket" in text

    def test_profile_sweep(self, capsys):
        assert main(["profile", "matmul25d", "--sweep", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "per-term strong scaling" in out
        assert "T:gammaF" in out and "E:epsT" in out

    def test_profile_sweep_json(self, capsys):
        import json

        assert (
            main(["profile", "matmul25d", "--sweep", "--n", "16", "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro_profile_sweep/v1"
        assert [pt["p"] for pt in payload["points"]] == [16, 32, 64]

    def test_sweep_rejects_other_workloads(self):
        with pytest.raises(SystemExit):
            main(["profile", "fft", "--sweep"])

    def test_profile_rejects_invalid_p(self):
        with pytest.raises(SystemExit) as exc:
            main(["profile", "matmul25d", "--p", "5"])
        assert "q^2 c" in str(exc.value)


class TestPowerCommand:
    def test_power_human_mode(self, capsys):
        assert main(["power", "matmul25d", "--p", "8"]) == 0
        out = capsys.readouterr().out
        assert "machine power over virtual time" in out
        assert "average" in out and "peak" in out
        assert "catalog caps" in out

    def test_power_json_mode(self, capsys):
        import json

        assert main(["power", "nbody", "--p", "2", "--n", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro_power/v1"
        assert payload["p"] == 2
        assert len(payload["per_rank"]) == 2
        assert payload["cap_violations"] == []
        assert payload["average_watts"] > 0

    def test_power_cap_violation_exits_3(self, capsys):
        # The default matmul25d run peaks above 1 W, so a 1 W machine
        # cap must produce violation intervals and a nonzero exit.
        with pytest.raises(SystemExit) as exc:
            main(["power", "matmul25d", "--p", "8", "--cap", "1.0"])
        assert exc.value.code == 3
        assert "CAP VIOLATION" in capsys.readouterr().out

    def test_power_perfetto_out_merges_counters(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "power_trace.json"
        assert main(
            [
                "power",
                "matmul25d",
                "--p",
                "8",
                "--perfetto-out",
                str(out_path),
            ]
        ) == 0
        events = json.loads(out_path.read_text())["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert "machine power [W]" in names
        assert any(n.startswith("rank ") for n in names)
        # thread-name metadata is untouched by the counter merge
        meta = [e for e in events if e["ph"] == "M"]
        assert sorted(e["tid"] for e in meta) == list(range(8))

    def test_power_rejects_unknown_scenario(self):
        # argparse choices= guard, same as trace/profile
        with pytest.raises(SystemExit):
            build_parser().parse_args(["power", "nosuch"])

    def test_power_rejects_invalid_p(self):
        with pytest.raises(SystemExit) as exc:
            main(["power", "matmul25d", "--p", "5"])
        assert "q^2 c" in str(exc.value)


class TestScenarioRegistry:
    """Unknown scenario names exit nonzero listing the valid set —
    through the one shared resolve_scenario helper."""

    def test_faults_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit) as exc:
            main(["faults", "nosuch"])
        msg = str(exc.value)
        assert "matmul25d" in msg and "nosuch" in msg

    def test_faults_rejects_known_but_fault_incapable(self):
        with pytest.raises(SystemExit) as exc:
            main(["faults", "fft"])
        assert "no fault-recovery variant" in str(exc.value)

    def test_observe_rejects_unknown_scenario(self, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        with pytest.raises(SystemExit) as exc:
            main(["observe", "record", "nosuch", "--ledger", ledger])
        msg = str(exc.value)
        assert "valid scenarios" in msg
        for name in ("cannon", "fft", "matmul25d", "nbody"):
            assert name in msg

    def test_resolve_scenario_returns_registry_row(self):
        from repro.cli import TRACE_WORKLOADS, resolve_scenario

        assert resolve_scenario("fft") == TRACE_WORKLOADS["fft"]


class TestObserveCommand:
    def test_record_then_fit_and_report(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        assert main(
            ["observe", "record", "cannon", "--ledger", ledger]
        ) == 0
        out = capsys.readouterr().out
        assert "recorded cannon" in out and ledger in out
        assert main(["observe", "fit", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "gamma_t" in out and "model fit over 1 records" in out
        assert main(["observe", "report", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "scaling observatory" in out and "cannon" in out

    def test_report_html(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        html_out = tmp_path / "dash.html"
        assert main(["observe", "record", "fft", "--ledger", ledger]) == 0
        capsys.readouterr()
        assert main(
            ["observe", "report", "--ledger", ledger, "--html", str(html_out)]
        ) == 0
        html = html_out.read_text()
        assert html.startswith("<!DOCTYPE html>") and "fft" in html

    def test_check_smoke_sweep_is_perfect(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        assert main(["observe", "check", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "PERFECT" in out
        assert "p=[36, 72, 108]" in out

    def test_check_inflated_sweep_degrades_and_exits_nonzero(
        self, capsys, tmp_path
    ):
        ledger = str(tmp_path / "ledger.jsonl")
        assert main(["observe", "check", "--ledger", ledger]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "observe",
                    "check",
                    "--ledger",
                    ledger,
                    "--inflate",
                    "T:alphaS=2",
                ]
            )
        assert exc.value.code == 2
        assert "DEGRADED" in capsys.readouterr().out

    def test_check_json_mode(self, capsys, tmp_path):
        import json

        ledger = str(tmp_path / "ledger.jsonl")
        assert main(["observe", "check", "--ledger", ledger, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro_drift/v1"
        assert payload["classification"] == "perfect"

    def test_inflate_rejects_malformed_spec(self, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        with pytest.raises(SystemExit) as exc:
            main(
                ["observe", "check", "--ledger", ledger, "--inflate", "bogus"]
            )
        assert "TERM=FACTOR" in str(exc.value)
