"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        )
        assert set(sub.choices) == {
            "table1",
            "table2",
            "fig3",
            "fig4",
            "fig6",
            "fig7",
            "validate",
            "questions",
            "report",
        }

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "core_freq_ghz" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Sandy Bridge" in out and "GFLOPS/W" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "knees" in out and "classical W*p" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "M0" in out and "admissible" in out

    def test_fig6(self, capsys):
        assert main(["fig6", "--generations", "3"]) == 0
        out = capsys.readouterr().out
        assert "gamma_e" in out

    def test_fig7(self, capsys):
        assert main(["fig7", "--generations", "6"]) == 0
        out = capsys.readouterr().out
        assert "75 GFLOPS/W crossed at generation 5.56" in out

    def test_questions(self, capsys):
        assert main(["questions"]) == 0
        out = capsys.readouterr().out
        assert "[1]" in out and "[5]" in out and "GFLOPS/W" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "matmul25d c=1" in out and "nbody c=1" in out
