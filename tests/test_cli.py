"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        )
        assert set(sub.choices) == {
            "table1",
            "table2",
            "fig3",
            "fig4",
            "fig6",
            "fig7",
            "validate",
            "questions",
            "report",
            "trace",
            "profile",
            "faults",
            "power",
            "observe",
            "conformance",
            "sweep",
        }

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_trace_help_lists_workloads(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["trace", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for name in ("matmul25d", "cannon", "summa", "caps", "nbody", "fft"):
            assert name in out


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "core_freq_ghz" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Sandy Bridge" in out and "GFLOPS/W" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "knees" in out and "classical W*p" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "M0" in out and "admissible" in out

    def test_fig6(self, capsys):
        assert main(["fig6", "--generations", "3"]) == 0
        out = capsys.readouterr().out
        assert "gamma_e" in out

    def test_fig7(self, capsys):
        assert main(["fig7", "--generations", "6"]) == 0
        out = capsys.readouterr().out
        assert "75 GFLOPS/W crossed at generation 5.56" in out

    def test_questions(self, capsys):
        assert main(["questions"]) == 0
        out = capsys.readouterr().out
        assert "[1]" in out and "[5]" in out and "GFLOPS/W" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "matmul25d c=1" in out and "nbody c=1" in out


class TestTraceCommand:
    def test_trace_matmul25d_writes_perfetto_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "matmul25d", "--p", "8", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "T_sim" in out
        data = json.loads(out_path.read_text())
        events = data["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert sorted(e["tid"] for e in meta) == list(range(8))
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for e in complete:
            assert {"ts", "dur", "pid", "tid", "name"} <= e.keys()

    def test_trace_nbody_runs(self, capsys):
        assert main(["trace", "nbody", "--p", "2", "--n", "8"]) == 0
        assert "nbody" in capsys.readouterr().out

    def test_trace_rejects_bad_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "nosuch"])

    def test_trace_rejects_invalid_p(self):
        # p=5 is not q^2 c for any valid (q, c)
        with pytest.raises(SystemExit) as exc:
            main(["trace", "matmul25d", "--p", "5"])
        assert "q^2 c" in str(exc.value)

    def test_trace_rejects_invalid_n(self):
        # fft needs a power-of-two signal length
        with pytest.raises(SystemExit) as exc:
            main(["trace", "fft", "--p", "2", "--n", "100"])
        assert "power-of-two" in str(exc.value)

    def test_trace_json_mode(self, capsys):
        import json

        assert main(["trace", "nbody", "--p", "2", "--n", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro_trace/v1"
        assert payload["workload"] == "nbody" and payload["p"] == 2
        assert payload["dropped_events"] == 0
        assert payload["critical_path"]["total"] > 0
        assert payload["breakdown"]


class TestProfileCommand:
    def test_profile_human_mode(self, capsys):
        assert main(["profile", "cannon", "--p", "4", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "model profile: cannon" in out
        assert "Eq. (1) time per term" in out
        assert "Eq. (2) energy per term" in out

    def test_profile_json_mode(self, capsys):
        import json

        assert main(["profile", "nbody", "--p", "2", "--n", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro_profile/v1"
        assert payload["p"] == 2
        assert payload["time"]["total"] == sum(
            payload["time"]["terms"].values()
        )
        assert payload["phases"]  # profile always traces

    def test_profile_metrics_out(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        assert main(
            [
                "profile",
                "nbody",
                "--p",
                "2",
                "--n",
                "8",
                "--metrics-out",
                str(prom),
            ]
        ) == 0
        text = prom.read_text()
        assert "# TYPE simmpi_sent_words_total counter" in text
        assert "simmpi_message_words_bucket" in text

    def test_profile_sweep(self, capsys):
        assert main(["profile", "matmul25d", "--sweep", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "per-term strong scaling" in out
        assert "T:gammaF" in out and "E:epsT" in out

    def test_profile_sweep_json(self, capsys):
        import json

        assert (
            main(["profile", "matmul25d", "--sweep", "--n", "16", "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro_profile_sweep/v1"
        assert [pt["p"] for pt in payload["points"]] == [16, 32, 64]

    def test_sweep_rejects_other_workloads(self):
        with pytest.raises(SystemExit):
            main(["profile", "fft", "--sweep"])

    def test_profile_rejects_invalid_p(self):
        with pytest.raises(SystemExit) as exc:
            main(["profile", "matmul25d", "--p", "5"])
        assert "q^2 c" in str(exc.value)


class TestPowerCommand:
    def test_power_human_mode(self, capsys):
        assert main(["power", "matmul25d", "--p", "8"]) == 0
        out = capsys.readouterr().out
        assert "machine power over virtual time" in out
        assert "average" in out and "peak" in out
        assert "catalog caps" in out

    def test_power_json_mode(self, capsys):
        import json

        assert main(["power", "nbody", "--p", "2", "--n", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro_power/v1"
        assert payload["p"] == 2
        assert len(payload["per_rank"]) == 2
        assert payload["cap_violations"] == []
        assert payload["average_watts"] > 0

    def test_power_cap_violation_exits_3(self, capsys):
        # The default matmul25d run peaks above 1 W, so a 1 W machine
        # cap must produce violation intervals and a nonzero exit.
        with pytest.raises(SystemExit) as exc:
            main(["power", "matmul25d", "--p", "8", "--cap", "1.0"])
        assert exc.value.code == 3
        assert "CAP VIOLATION" in capsys.readouterr().out

    def test_power_perfetto_out_merges_counters(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "power_trace.json"
        assert main(
            [
                "power",
                "matmul25d",
                "--p",
                "8",
                "--perfetto-out",
                str(out_path),
            ]
        ) == 0
        events = json.loads(out_path.read_text())["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert "machine power [W]" in names
        assert any(n.startswith("rank ") for n in names)
        # thread-name metadata is untouched by the counter merge
        meta = [e for e in events if e["ph"] == "M"]
        assert sorted(e["tid"] for e in meta) == list(range(8))

    def test_power_rejects_unknown_scenario(self):
        # argparse choices= guard, same as trace/profile
        with pytest.raises(SystemExit):
            build_parser().parse_args(["power", "nosuch"])

    def test_power_rejects_invalid_p(self):
        with pytest.raises(SystemExit) as exc:
            main(["power", "matmul25d", "--p", "5"])
        assert "q^2 c" in str(exc.value)


class TestScenarioRegistry:
    """Unknown scenario names exit nonzero listing the valid set —
    through the one shared resolve_scenario helper."""

    def test_faults_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit) as exc:
            main(["faults", "nosuch"])
        msg = str(exc.value)
        assert "matmul25d" in msg and "nosuch" in msg

    def test_faults_rejects_known_but_fault_incapable(self):
        with pytest.raises(SystemExit) as exc:
            main(["faults", "fft"])
        assert "no fault-recovery variant" in str(exc.value)

    def test_observe_rejects_unknown_scenario(self, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        with pytest.raises(SystemExit) as exc:
            main(["observe", "record", "nosuch", "--ledger", ledger])
        msg = str(exc.value)
        assert "valid scenarios" in msg
        for name in ("cannon", "fft", "matmul25d", "nbody"):
            assert name in msg

    def test_resolve_scenario_returns_registry_row(self):
        from repro.cli import TRACE_WORKLOADS, resolve_scenario

        assert resolve_scenario("fft") == TRACE_WORKLOADS["fft"]


class TestObserveCommand:
    def test_record_then_fit_and_report(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        assert main(
            ["observe", "record", "cannon", "--ledger", ledger]
        ) == 0
        out = capsys.readouterr().out
        assert "recorded cannon" in out and ledger in out
        assert main(["observe", "fit", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "gamma_t" in out and "model fit over 1 records" in out
        assert main(["observe", "report", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "scaling observatory" in out and "cannon" in out

    def test_report_html(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        html_out = tmp_path / "dash.html"
        assert main(["observe", "record", "fft", "--ledger", ledger]) == 0
        capsys.readouterr()
        assert main(
            ["observe", "report", "--ledger", ledger, "--html", str(html_out)]
        ) == 0
        html = html_out.read_text()
        assert html.startswith("<!DOCTYPE html>") and "fft" in html

    def test_check_smoke_sweep_is_perfect(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        assert main(["observe", "check", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "PERFECT" in out
        assert "p=[36, 72, 108]" in out

    def test_check_inflated_sweep_degrades_and_exits_nonzero(
        self, capsys, tmp_path
    ):
        ledger = str(tmp_path / "ledger.jsonl")
        assert main(["observe", "check", "--ledger", ledger]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "observe",
                    "check",
                    "--ledger",
                    ledger,
                    "--inflate",
                    "T:alphaS=2",
                ]
            )
        assert exc.value.code == 2
        assert "DEGRADED" in capsys.readouterr().out

    def test_check_json_mode(self, capsys, tmp_path):
        import json

        ledger = str(tmp_path / "ledger.jsonl")
        assert main(["observe", "check", "--ledger", ledger, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro_drift/v1"
        assert payload["classification"] == "perfect"

    def test_inflate_rejects_malformed_spec(self, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        with pytest.raises(SystemExit) as exc:
            main(
                ["observe", "check", "--ledger", ledger, "--inflate", "bogus"]
            )
        assert "TERM=FACTOR" in str(exc.value)

    def test_check_reuses_sweep_cache_next_to_ledger(self, capsys, tmp_path):
        # The smoke sweep's cache lives beside the ledger: a second
        # --run-sweep must replay it (dashboard reports the hits).
        ledger = str(tmp_path / "ledger.jsonl")
        assert main(["observe", "check", "--ledger", ledger]) == 0
        capsys.readouterr()
        assert (tmp_path / "sweepcache").is_dir()
        assert main(
            ["observe", "check", "--ledger", ledger, "--run-sweep"]
        ) == 0
        capsys.readouterr()
        assert main(["observe", "report", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "sweep cache: 3 replayed, 3 simulated" in out


class TestSweepCommand:
    def _args(self, tmp_path, *extra):
        return [
            "sweep",
            *extra,
            "--n",
            "24",
            "--ledger",
            str(tmp_path / "ledger.jsonl"),
            "--cache-dir",
            str(tmp_path / "cache"),
        ]

    def test_plan_lists_cells_with_cache_status(self, capsys, tmp_path):
        assert main(self._args(tmp_path, "plan")) == 0
        out = capsys.readouterr().out
        assert "3 cell(s)" in out and out.count("miss") == 3
        for p in (36, 72, 108):
            assert f"matmul25d/p{p}" in out

    def test_run_cold_then_warm_hits_cache(self, capsys, tmp_path):
        assert main(self._args(tmp_path, "run", "--workers", "2")) == 0
        out = capsys.readouterr().out
        assert "3 simulated" in out and "0 cached" in out
        assert main(self._args(tmp_path, "run")) == 0
        out = capsys.readouterr().out
        assert "3 cached" in out and "0 simulated" in out
        # plan now reports every cell cached
        assert main(self._args(tmp_path, "plan")) == 0
        assert capsys.readouterr().out.count("cached") == 3

    def test_run_json_payload(self, capsys, tmp_path):
        import json

        assert main(
            self._args(tmp_path, "run", "--workers", "0", "--json")
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro_sweep_outcome/v1"
        assert payload["cells"] == 3 and payload["failed"] == 0
        assert {o["status"] for o in payload["outcomes"]} == {"simulated"}

    def test_run_cold_flag_bypasses_cache(self, capsys, tmp_path):
        assert main(self._args(tmp_path, "run", "--workers", "0")) == 0
        capsys.readouterr()
        assert main(
            self._args(tmp_path, "run", "--workers", "0", "--cold")
        ) == 0
        assert "3 simulated" in capsys.readouterr().out

    def test_gc_drops_stale_entries_on_fingerprint_change(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.sweep.cache import FINGERPRINT_ENV

        monkeypatch.setenv(FINGERPRINT_ENV, "fp-old")
        assert main(self._args(tmp_path, "run", "--workers", "0")) == 0
        capsys.readouterr()
        monkeypatch.setenv(FINGERPRINT_ENV, "fp-new")
        assert main(self._args(tmp_path, "gc")) == 0
        out = capsys.readouterr().out
        assert "removed 3" in out

    def test_gc_all(self, capsys, tmp_path):
        assert main(self._args(tmp_path, "run", "--workers", "0")) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path, "gc", "--all")) == 0
        assert "removed 3" in capsys.readouterr().out

    def test_spec_file_roundtrip(self, capsys, tmp_path):
        import json

        from repro.sweep import SweepSpec

        spec = SweepSpec(workload="fft", n=64, p_values=(2, 4))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_json()))
        assert main(
            self._args(tmp_path, "run", "--workers", "0")
            + ["--spec", str(spec_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "2 cell(s)" in out

    def test_rejects_unreadable_spec(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(self._args(tmp_path, "run") + ["--spec", "/nonexistent.json"])
        assert "cannot read" in str(exc.value)

    def test_rejects_bad_spec_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "wrong/v9"}')
        with pytest.raises(SystemExit) as exc:
            main(self._args(tmp_path, "run") + ["--spec", str(bad)])
        assert "schema" in str(exc.value)

    def test_failed_cell_exits_5(self, capsys, tmp_path):
        import json

        from repro.sweep import SweepSpec

        # fft demands a power-of-two signal length; n=100 fails the cell.
        spec = SweepSpec(workload="fft", n=100, p_values=(2,))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_json()))
        with pytest.raises(SystemExit) as exc:
            main(
                self._args(tmp_path, "run", "--workers", "0")
                + ["--spec", str(spec_path)]
            )
        assert exc.value.code == 5


class TestExitCodeContract:
    """The documented CLI exit-code table, pinned in one place.

    Every command exits 0 on success; failure modes use distinct,
    documented codes: 1 = broken/usage, 2 = drift degraded,
    3 = power cap violation, 4 = conformance divergence,
    5 = sweep cell failure.
    """

    @pytest.mark.parametrize(
        "argv, code",
        [
            # success paths -> 0 (main returns, no SystemExit)
            (["trace", "nbody", "--p", "2", "--n", "8"], 0),
            (["profile", "nbody", "--p", "2", "--n", "8"], 0),
            (["faults", "--p", "8", "--n", "16", "--c", "2"], 0),
            (["power", "nbody", "--p", "2", "--n", "8"], 0),
            (["conformance", "--grid", "random", "--cells", "2"], 0),
            # usage errors -> SystemExit with a message (exit 1)
            (["trace", "matmul25d", "--p", "5"], "q^2 c"),
            (["observe", "check", "--inflate", "bogus"], "TERM=FACTOR"),
            # contract codes
            (["power", "matmul25d", "--p", "8", "--cap", "1.0"], 3),
        ],
    )
    def test_exit_codes(self, argv, code, tmp_path, capsys):
        if argv[0] == "observe":
            argv = argv + ["--ledger", str(tmp_path / "ledger.jsonl")]
        if code == 0:
            assert main(argv) == 0
        else:
            with pytest.raises(SystemExit) as exc:
                main(argv)
            if isinstance(code, int):
                assert exc.value.code == code
            else:  # message-carrying SystemExit: the shell sees exit 1
                assert code in str(exc.value)

    def test_observe_degraded_exits_2(self, capsys, tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        assert main(["observe", "check", "--ledger", ledger]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as exc:
            main(
                ["observe", "check", "--ledger", ledger,
                 "--inflate", "T:alphaS=2"]
            )
        assert exc.value.code == 2

    def test_conformance_divergence_exits_4(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(
                ["conformance", "--grid", "random", "--cells", "2",
                 "--demo-divergence"]
            )
        assert exc.value.code == 4

    def test_sweep_failure_exits_5(self, tmp_path, capsys):
        import json

        from repro.sweep import SweepSpec

        spec = SweepSpec(workload="fft", n=100, p_values=(2,))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_json()))
        with pytest.raises(SystemExit) as exc:
            main(
                ["sweep", "run", "--spec", str(spec_path), "--workers", "0",
                 "--ledger", str(tmp_path / "l.jsonl"),
                 "--cache-dir", str(tmp_path / "c")]
            )
        assert exc.value.code == 5

    def test_sweep_success_exits_0(self, tmp_path, capsys):
        assert main(
            ["sweep", "run", "--n", "24", "--workers", "0",
             "--ledger", str(tmp_path / "l.jsonl"),
             "--cache-dir", str(tmp_path / "c")]
        ) == 0
