"""Unit tests for repro.core.parameters."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.parameters import (
    MachineParameters,
    TwoLevelMachineParameters,
    effective_beta,
)
from repro.exceptions import ParameterError

from conftest import machine_strategy


def make(**over):
    base = dict(
        gamma_t=1e-9, beta_t=1e-8, alpha_t=1e-6,
        gamma_e=1e-9, beta_e=1e-8, alpha_e=1e-7,
        delta_e=1e-9, epsilon_e=1e-3,
        memory_words=2.0**20, max_message_words=2.0**10,
    )
    base.update(over)
    return MachineParameters(**base)


class TestMachineParametersValidation:
    def test_valid_construction(self):
        m = make()
        assert m.gamma_t == 1e-9
        assert m.memory_words == 2.0**20

    def test_zero_gamma_t_rejected(self):
        with pytest.raises(ParameterError):
            make(gamma_t=0.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ParameterError):
            make(beta_e=-1e-9)

    def test_nan_rejected(self):
        with pytest.raises(ParameterError):
            make(delta_e=float("nan"))

    def test_inf_time_rejected(self):
        with pytest.raises(ParameterError):
            make(alpha_t=float("inf"))

    def test_zero_memory_rejected(self):
        with pytest.raises(ParameterError):
            make(memory_words=0.0)

    def test_message_exceeding_memory_rejected(self):
        with pytest.raises(ParameterError):
            make(memory_words=100.0, max_message_words=101.0)

    def test_message_equal_memory_allowed(self):
        m = make(memory_words=100.0, max_message_words=100.0)
        assert m.max_message_words == 100.0

    def test_zero_energy_params_allowed(self):
        # The paper's case study sets alpha_e = eps_e = 0.
        m = make(alpha_e=0.0, epsilon_e=0.0)
        assert m.alpha_e == 0.0

    def test_frozen(self):
        m = make()
        with pytest.raises(AttributeError):
            m.gamma_t = 1.0  # type: ignore[misc]

    def test_hashable(self):
        assert isinstance(hash(make()), int)


class TestDerivedQuantities:
    def test_beta_t_eff_folds_latency(self):
        m = make(beta_t=1e-8, alpha_t=1e-6, max_message_words=100.0)
        assert m.beta_t_eff == pytest.approx(1e-8 + 1e-6 / 100.0)

    def test_beta_e_eff_folds_message_energy(self):
        m = make(beta_e=1e-8, alpha_e=1e-6, max_message_words=100.0)
        assert m.beta_e_eff == pytest.approx(1e-8 + 1e-6 / 100.0)

    def test_comm_energy_per_word_matches_paper_B(self):
        m = make()
        expected = (
            m.beta_e
            + m.beta_t * m.epsilon_e
            + (m.alpha_e + m.alpha_t * m.epsilon_e) / m.max_message_words
        )
        assert m.comm_energy_per_word == pytest.approx(expected)

    def test_flop_energy(self):
        m = make(gamma_e=2e-9, gamma_t=1e-9, epsilon_e=0.5)
        assert m.flop_energy == pytest.approx(2e-9 + 0.5e-9)

    def test_peak_flops_per_watt(self):
        m = make(gamma_e=4e-10)
        assert m.peak_flops_per_watt() == pytest.approx(2.5e9)

    @given(machine_strategy())
    def test_effective_betas_at_least_raw(self, m):
        assert m.beta_t_eff >= m.beta_t
        assert m.beta_e_eff >= m.beta_e


class TestReplaceAndScale:
    def test_replace_changes_field(self):
        m = make().replace(gamma_e=9e-9)
        assert m.gamma_e == 9e-9
        assert m.beta_e == 1e-8  # untouched

    def test_replace_validates(self):
        with pytest.raises(ParameterError):
            make().replace(gamma_t=-1.0)

    def test_scale_multiplies(self):
        m = make(gamma_e=8e-9).scale(gamma_e=0.5)
        assert m.gamma_e == pytest.approx(4e-9)

    def test_scale_multiple_fields(self):
        m = make(gamma_e=8e-9, beta_e=4e-8).scale(gamma_e=0.5, beta_e=0.25)
        assert m.gamma_e == pytest.approx(4e-9)
        assert m.beta_e == pytest.approx(1e-8)

    def test_scale_unknown_field_rejected(self):
        with pytest.raises(ParameterError):
            make().scale(bogus=0.5)

    def test_scale_negative_factor_rejected(self):
        with pytest.raises(ParameterError):
            make().scale(gamma_e=-1.0)

    @given(machine_strategy(), st.floats(min_value=0.1, max_value=10.0))
    def test_scale_roundtrip(self, m, factor):
        scaled = m.scale(beta_e=factor)
        assert scaled.beta_e == pytest.approx(m.beta_e * factor)


class TestEffectiveBeta:
    def test_formula(self):
        assert effective_beta(1e-8, 1e-6, 100.0) == pytest.approx(1e-8 + 1e-8)

    def test_infinite_m(self):
        assert effective_beta(1e-8, 1e-6, math.inf) == pytest.approx(1e-8)

    def test_zero_m_rejected(self):
        with pytest.raises(ParameterError):
            effective_beta(1e-8, 1e-6, 0.0)


def make_twolevel(**over):
    base = dict(
        gamma_t=1e-9, gamma_e=1e-9, epsilon_e=0.0,
        beta_t_node=1e-8, alpha_t_node=1e-6,
        beta_e_node=1e-8, alpha_e_node=1e-7,
        beta_t_core=1e-9, alpha_t_core=1e-7,
        beta_e_core=1e-9, alpha_e_core=1e-8,
        delta_e_node=1e-9, delta_e_core=1e-10,
        memory_node=2.0**24, memory_core=2.0**16,
        p_nodes=4, p_cores=8,
    )
    base.update(over)
    return TwoLevelMachineParameters(**base)


class TestTwoLevelParameters:
    def test_p_total(self):
        assert make_twolevel(p_nodes=3, p_cores=5).p_total == 15

    def test_zero_nodes_rejected(self):
        with pytest.raises(ParameterError):
            make_twolevel(p_nodes=0)

    def test_negative_link_cost_rejected(self):
        with pytest.raises(ParameterError):
            make_twolevel(beta_t_node=-1.0)

    def test_effective_betas_default_unbounded_messages(self):
        m = make_twolevel()
        assert m.beta_t_node_eff == m.beta_t_node
        assert m.beta_e_core_eff == m.beta_e_core

    def test_effective_betas_with_message_cap(self):
        m = make_twolevel(max_message_node=100.0)
        assert m.beta_t_node_eff == pytest.approx(1e-8 + 1e-6 / 100.0)
        assert m.beta_e_node_eff == pytest.approx(1e-8 + 1e-7 / 100.0)

    def test_replace(self):
        m = make_twolevel().replace(p_cores=2)
        assert m.p_cores == 2
