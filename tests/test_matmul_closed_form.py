"""Tests for the closed-form matmul optimal memory (tech-report result)."""

import pytest
from hypothesis import given, settings

from repro.core.costs import ClassicalMatMulCosts
from repro.core.optimize_numeric import NumericOptimizer, matmul_optimal_memory
from repro.exceptions import InfeasibleError
from repro.machines.catalog import JAKETOWN

from conftest import machine_strategy


class TestMatmulOptimalMemory:
    def test_matches_numeric_optimizer(self, machine):
        closed = matmul_optimal_memory(machine)
        num = NumericOptimizer(ClassicalMatMulCosts(), machine)
        # Pick n large enough that the unconstrained optimum is interior.
        n = max(1e4, 10 * closed**0.5)
        run = num.min_energy(n)
        if run.M < machine.memory_words * 0.99 and run.M < n * n * 0.99:
            assert run.M == pytest.approx(closed, rel=1e-3)

    def test_jaketown_value(self):
        m = JAKETOWN.replace(max_message_words=2.0**20, epsilon_e=1e-2)
        closed = matmul_optimal_memory(m)
        assert 1e5 < closed < 1e8  # megaword-scale working sets

    def test_stationarity(self, machine):
        """e'(M*) = 0: small perturbations only increase energy/flop."""
        M = matmul_optimal_memory(machine)
        g = machine

        def per_flop(M):
            B = g.comm_energy_per_word
            return (
                B / M**0.5
                + g.delta_e * g.gamma_t * M
                + g.delta_e * (g.beta_t + g.alpha_t / g.max_message_words) * M**0.5
            )

        e0 = per_flop(M)
        assert per_flop(M * 1.05) >= e0 * (1 - 1e-9)
        assert per_flop(M * 0.95) >= e0 * (1 - 1e-9)

    @given(machine_strategy())
    @settings(max_examples=40)
    def test_positive_root_property(self, m):
        B = m.comm_energy_per_word
        d_g = m.delta_e * m.gamma_t
        d_b = m.delta_e * (m.beta_t + m.alpha_t / m.max_message_words)
        if (d_g == 0 and d_b == 0) or B == 0:
            return
        M = matmul_optimal_memory(m)
        assert M >= 1.0
        if M == 1.0:
            # Clamped: the unconstrained optimum sat below one word.
            u = 1.0
            assert 2 * d_g * u**3 + d_b * u**2 >= B * (1 - 1e-6)
            return
        # Root check: 2 d_g u^3 + d_b u^2 = B at u = sqrt(M).
        u = M**0.5
        assert 2 * d_g * u**3 + d_b * u**2 == pytest.approx(B, rel=1e-6)

    def test_free_memory_infeasible(self, machine):
        with pytest.raises(InfeasibleError):
            matmul_optimal_memory(machine.replace(delta_e=0.0))

    def test_free_communication_minimal_memory(self, machine):
        free_comm = machine.replace(
            beta_e=0.0, alpha_e=0.0, epsilon_e=0.0
        )
        assert matmul_optimal_memory(free_comm) == 1.0

    def test_quadratic_branch(self, machine):
        """gamma_t cannot be zero (validated), so exercise the d_g ~ 0
        limit by comparison: shrinking gamma_t moves M* toward B/d_b."""
        tiny = machine.replace(gamma_t=1e-30)
        g = tiny
        B = g.comm_energy_per_word
        d_b = g.delta_e * (g.beta_t + g.alpha_t / g.max_message_words)
        assert matmul_optimal_memory(tiny) == pytest.approx(B / d_b, rel=1e-3)
