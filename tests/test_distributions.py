"""Tests for data layouts: block ranges, cyclic slices, Morton order."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.distributions import (
    assemble_block_2d,
    block_1d,
    block_2d,
    block_ranges,
    cyclic_merge,
    cyclic_slice,
    from_morton,
    to_morton,
)
from repro.exceptions import ParameterError


class TestBlockRanges:
    def test_even_split(self):
        assert block_ranges(12, 4) == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_uneven_split_front_loaded(self):
        assert block_ranges(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_ranks_than_items(self):
        rngs = block_ranges(2, 4)
        assert rngs == [(0, 1), (1, 2), (2, 2), (2, 2)]

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=32))
    def test_partition_property(self, n, p):
        rngs = block_ranges(n, p)
        assert len(rngs) == p
        assert rngs[0][0] == 0 and rngs[-1][1] == n
        for (a0, a1), (b0, b1) in zip(rngs, rngs[1:]):
            assert a1 == b0  # contiguous, disjoint
        sizes = [hi - lo for lo, hi in rngs]
        assert max(sizes) - min(sizes) <= 1  # balanced

    def test_invalid(self):
        with pytest.raises(ParameterError):
            block_ranges(5, 0)


class TestBlock1D2D:
    def test_block_1d(self, rng):
        x = rng.standard_normal((10, 3))
        parts = [block_1d(x, r, 3) for r in range(3)]
        assert np.allclose(np.vstack(parts), x)

    def test_block_1d_is_copy(self, rng):
        x = rng.standard_normal((6, 2))
        b = block_1d(x, 0, 2)
        b[0, 0] = 1e9
        assert x[0, 0] != 1e9

    def test_block_2d_tiles(self, rng):
        a = rng.standard_normal((6, 6))
        tiles = [[block_2d(a, i, j, 2, 3) for j in range(3)] for i in range(2)]
        assert np.allclose(assemble_block_2d(tiles), a)

    def test_block_2d_uneven_rejected(self, rng):
        with pytest.raises(ParameterError):
            block_2d(rng.standard_normal((5, 5)), 0, 0, 2, 2)


class TestCyclic:
    def test_slice_contents(self):
        flat = np.arange(12)
        assert np.array_equal(cyclic_slice(flat, 1, 3), [1, 4, 7, 10])

    def test_roundtrip(self, rng):
        flat = rng.standard_normal(24)
        parts = [cyclic_slice(flat, r, 4) for r in range(4)]
        assert np.allclose(cyclic_merge(parts, 24), flat)

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30)
    def test_roundtrip_property(self, p, extra):
        flat = np.arange(p * 4 + (extra % p))
        parts = [cyclic_slice(flat, r, p) for r in range(p)]
        assert np.array_equal(cyclic_merge(parts, flat.size), flat)

    def test_bad_rank(self):
        with pytest.raises(ParameterError):
            cyclic_slice(np.arange(4), 5, 4)


class TestMorton:
    def test_depth0_is_ravel(self, rng):
        a = rng.standard_normal((3, 3))
        assert np.allclose(to_morton(a, 0), a.ravel())

    def test_depth1_quadrant_order(self):
        a = np.array([[1, 2], [3, 4]])
        assert np.array_equal(to_morton(a, 1), [1, 2, 3, 4])
        a = np.arange(16).reshape(4, 4)
        m = to_morton(a, 1)
        # First quadrant (rows 0-1, cols 0-1) occupies the first 4 slots.
        assert np.array_equal(m[:4], [0, 1, 4, 5])

    def test_quadrants_contiguous_at_depth(self, rng):
        n, depth = 8, 2
        a = rng.standard_normal((n, n))
        m = to_morton(a, depth)
        q = m.size // 4
        assert np.allclose(from_morton(m[:q], n // 2, depth - 1), a[:4, :4])
        assert np.allclose(from_morton(m[3 * q :], n // 2, depth - 1), a[4:, 4:])

    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30)
    def test_roundtrip_property(self, depth, scale):
        n = (2**depth) * scale
        a = np.arange(n * n, dtype=float).reshape(n, n)
        assert np.allclose(from_morton(to_morton(a, depth), n, depth), a)

    def test_odd_order_rejected_at_depth(self):
        with pytest.raises(ParameterError):
            to_morton(np.zeros((6, 6)), 2)  # 6/2=3 odd at depth 2

    def test_non_square_rejected(self):
        with pytest.raises(ParameterError):
            to_morton(np.zeros((4, 6)), 1)

    def test_from_morton_length_check(self):
        with pytest.raises(ParameterError):
            from_morton(np.zeros(10), 4, 1)
