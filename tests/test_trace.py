"""Tests for TraceReport: aggregation and model evaluation on measured
counts."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.simmpi.counters import CounterSnapshot
from repro.simmpi.engine import run_spmd
from repro.simmpi.trace import TraceReport


def snap(rank, flops=0.0, ws=0, ms=0, wr=0, mr=0, peak=0, vtime=0.0,
         wsi=0, msi=0, wri=0, mri=0):
    return CounterSnapshot(
        rank=rank,
        flops=flops,
        words_sent=ws,
        messages_sent=ms,
        words_received=wr,
        messages_received=mr,
        mem_peak_words=peak,
        vtime=vtime,
        words_sent_internode=wsi,
        messages_sent_internode=msi,
        words_received_internode=wri,
        messages_received_internode=mri,
    )


class TestAggregation:
    def test_totals_and_maxima(self):
        rep = TraceReport(
            ranks=(
                snap(0, flops=10, ws=5, ms=1, wr=7, mr=2, peak=100),
                snap(1, flops=30, ws=7, ms=2, wr=5, mr=1, peak=50),
            )
        )
        assert rep.size == 2
        assert rep.total_flops == 40
        assert rep.max_flops == 30
        assert rep.total_words == 12
        assert rep.max_words == 7
        assert rep.total_messages == 3
        assert rep.max_messages == 2
        assert rep.max_mem_peak == 100

    def test_conservation(self):
        rep = TraceReport(ranks=(snap(0, ws=5, ms=1, wr=5, mr=1),))
        assert rep.words_conserved()
        rep2 = TraceReport(ranks=(snap(0, ws=5, ms=1, wr=4, mr=1),))
        assert not rep2.words_conserved()

    def test_conservation_checks_internode_subtallies(self):
        # Globally conserved, but a word metered internode on the sender
        # arrived intranode on the receiver: must NOT count as conserved.
        skewed = TraceReport(
            ranks=(
                snap(0, ws=5, ms=1, wsi=5, msi=1),
                snap(1, wr=5, mr=1, wri=0, mri=0),
            )
        )
        assert not skewed.words_conserved()
        # Same message count crossing nodes but word sub-tally skewed.
        word_skew = TraceReport(
            ranks=(
                snap(0, ws=5, ms=1, wsi=5, msi=1),
                snap(1, wr=5, mr=1, wri=3, mri=1),
            )
        )
        assert not word_skew.words_conserved()
        balanced = TraceReport(
            ranks=(
                snap(0, ws=5, ms=1, wsi=5, msi=1),
                snap(1, wr=5, mr=1, wri=5, mri=1),
            )
        )
        assert balanced.words_conserved()

    def test_conservation_through_twolevel_engine(self):
        # Regression: a two-level ring shift crosses node boundaries and
        # must conserve the internode sub-tallies end to end.
        def prog(comm):
            return comm.shift(np.arange(8.0), 1)

        out = run_spmd(4, prog, node_size=2)
        rep = out.report
        assert rep.total_words_internode > 0
        assert rep.words_conserved()

    def test_summary_contains_key_fields(self):
        rep = TraceReport(ranks=(snap(0, flops=10, ws=5, ms=1),))
        s = rep.summary()
        assert "p=1" in s and "W_max=5" in s

    def test_summary_omits_time_without_machine(self):
        rep = TraceReport(ranks=(snap(0, flops=10),))
        assert "T_sim" not in rep.summary()

    def test_summary_includes_simulated_time(self):
        rep = TraceReport(ranks=(snap(0, vtime=1.5), snap(1, vtime=2.5)))
        s = rep.summary()
        assert "T_sim=2.5" in s


class TestModelEvaluation:
    def test_time_is_max_over_ranks(self, machine):
        rep = TraceReport(
            ranks=(snap(0, flops=1e6, ws=10, ms=1), snap(1, flops=1e9, ws=0, ms=0))
        )
        t = rep.estimate_time(machine)
        assert t.total == pytest.approx(machine.gamma_t * 1e9)

    def test_rank_time(self, machine):
        rep = TraceReport(ranks=(snap(0, flops=100, ws=10, ms=1),))
        t = rep.rank_time(machine, 0)
        assert t.total == pytest.approx(
            machine.gamma_t * 100 + machine.beta_t * 10 + machine.alpha_t
        )

    def test_energy_terms(self, machine):
        rep = TraceReport(
            ranks=(snap(0, flops=50, ws=10, ms=2), snap(1, flops=70, ws=4, ms=1))
        )
        T = rep.estimate_time(machine).total
        e = rep.estimate_energy(machine, memory_words=1000.0)
        assert e.compute == pytest.approx(machine.gamma_e * 120)
        assert e.bandwidth == pytest.approx(machine.beta_e * 14)
        assert e.latency == pytest.approx(machine.alpha_e * 3)
        assert e.memory == pytest.approx(2 * machine.delta_e * 1000 * T)
        assert e.leakage == pytest.approx(2 * machine.epsilon_e * T)

    def test_energy_uses_measured_peak_memory_by_default(self, machine):
        rep = TraceReport(ranks=(snap(0, flops=1, peak=77),))
        e_default = rep.estimate_energy(machine)
        e_explicit = rep.estimate_energy(machine, memory_words=77)
        assert e_default.memory == pytest.approx(e_explicit.memory)

    def test_energy_falls_back_to_machine_memory(self, machine):
        rep = TraceReport(ranks=(snap(0, flops=1, peak=0),))
        e = rep.estimate_energy(machine)
        T = rep.estimate_time(machine).total
        assert e.memory == pytest.approx(
            machine.delta_e * machine.memory_words * T
        )

    def test_measured_peak_beats_machine_capacity(self, machine):
        # Any nonzero measured peak wins over the (much larger) machine
        # memory — the fallback must not be a max() of the two.
        rep = TraceReport(ranks=(snap(0, flops=1, peak=64),))
        T = rep.estimate_time(machine).total
        e = rep.estimate_energy(machine)
        assert e.memory == pytest.approx(machine.delta_e * 64 * T)
        assert e.memory < machine.delta_e * machine.memory_words * T

    def test_energy_default_memory_through_engine(self, machine):
        # A run that tracks allocations feeds its measured peak into the
        # default-memory path; one that doesn't falls back to capacity.
        def tracked(comm):
            comm.allocate(64)
            comm.add_flops(10)
            comm.release()

        rep = run_spmd(2, tracked).report
        T = rep.estimate_time(machine).total
        e = rep.estimate_energy(machine)
        assert e.memory == pytest.approx(2 * machine.delta_e * 64 * T)

        rep0 = run_spmd(2, lambda comm: comm.add_flops(10)).report
        T0 = rep0.estimate_time(machine).total
        e0 = rep0.estimate_energy(machine)
        assert e0.memory == pytest.approx(
            2 * machine.delta_e * machine.memory_words * T0
        )

    def test_explicit_runtime(self, machine):
        rep = TraceReport(ranks=(snap(0, flops=1),))
        e = rep.estimate_energy(machine, memory_words=10, runtime_seconds=2.0)
        assert e.memory == pytest.approx(machine.delta_e * 10 * 2.0)

    def test_negative_memory_rejected(self, machine):
        rep = TraceReport(ranks=(snap(0),))
        with pytest.raises(ParameterError):
            rep.estimate_energy(machine, memory_words=-1)


class TestEndToEnd:
    def test_memory_tracking_through_engine(self):
        def prog(comm):
            comm.allocate(500)
            comm.allocate(300)
            comm.release()
            comm.allocate(100)

        out = run_spmd(2, prog)
        assert out.report.max_mem_peak == 800

    def test_flops_through_engine(self):
        out = run_spmd(3, lambda comm: comm.add_flops(7.5))
        assert out.report.total_flops == pytest.approx(22.5)
