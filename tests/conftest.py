"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.parameters import MachineParameters
from repro.machines.catalog import JAKETOWN


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def machine() -> MachineParameters:
    """A machine with every cost term nonzero, so no model term can be
    silently dropped without a test noticing."""
    return MachineParameters(
        gamma_t=2e-9,
        beta_t=3e-8,
        alpha_t=5e-6,
        gamma_e=4e-9,
        beta_e=6e-8,
        alpha_e=2e-6,
        delta_e=7e-9,
        epsilon_e=1e-3,
        memory_words=float(2**30),
        max_message_words=float(2**16),
    )


@pytest.fixture
def jaketown() -> MachineParameters:
    return JAKETOWN


def machine_strategy() -> st.SearchStrategy[MachineParameters]:
    """Random valid machines for property-based tests.

    Parameter magnitudes span realistic hardware ranges; memory and
    message size keep m <= M.
    """
    pos = st.floats(min_value=1e-13, max_value=1e-6, allow_nan=False)
    nonneg = st.floats(min_value=0.0, max_value=1e-6, allow_nan=False)

    def build(gt, bt, at, ge, be, ae, de, ee, logM, frac_m):
        M = float(2.0**logM)
        m = max(1.0, M * frac_m)
        return MachineParameters(
            gamma_t=gt, beta_t=bt, alpha_t=at,
            gamma_e=ge, beta_e=be, alpha_e=ae,
            delta_e=de, epsilon_e=ee,
            memory_words=M, max_message_words=m,
        )

    return st.builds(
        build,
        pos, nonneg, nonneg, nonneg, nonneg, nonneg,
        st.floats(min_value=1e-15, max_value=1e-7),
        nonneg,
        st.integers(min_value=10, max_value=40),
        st.floats(min_value=1e-6, max_value=1.0),
    )
