"""Regression tests: our derivations must reproduce the paper's printed
Table I / Table II values and the Section VI scaling narrative."""

import math

import pytest

from repro.exceptions import InfeasibleError, ParameterError
from repro.machines.casestudy import (
    CASE_STUDY_N,
    CASE_STUDY_P,
    crossover_generation_table,
    efficiency_saturation_limit,
    generations_to_target,
    matmul_gflops_per_watt,
    scale_parameters_independently,
    scale_parameters_jointly,
)
from repro.machines.catalog import (
    JAKETOWN,
    JAKETOWN_SPEC,
    PROCESSOR_TABLE,
    derive_beta_e,
    derive_beta_t,
    derive_delta_e,
    derive_gamma_e,
    derive_gamma_t,
    derive_peak_gflops,
    jaketown_machine,
)


class TestTableII:
    def test_eleven_rows(self):
        assert len(PROCESSOR_TABLE) == 11

    @pytest.mark.parametrize("spec", PROCESSOR_TABLE, ids=lambda s: s.name)
    def test_peak_matches_printed(self, spec):
        assert spec.peak_gflops == pytest.approx(spec.printed_peak_gflops, rel=1e-3)

    @pytest.mark.parametrize("spec", PROCESSOR_TABLE, ids=lambda s: s.name)
    def test_gamma_t_matches_printed(self, spec):
        # The paper prints 3 significant digits.
        assert spec.gamma_t == pytest.approx(spec.printed_gamma_t, rel=5e-3)

    @pytest.mark.parametrize("spec", PROCESSOR_TABLE, ids=lambda s: s.name)
    def test_gamma_e_matches_printed(self, spec):
        assert spec.gamma_e == pytest.approx(spec.printed_gamma_e, rel=5e-3)

    @pytest.mark.parametrize("spec", PROCESSOR_TABLE, ids=lambda s: s.name)
    def test_gflops_per_watt_matches_printed(self, spec):
        assert spec.gflops_per_watt == pytest.approx(
            spec.printed_gflops_per_watt, rel=2e-3
        )

    def test_section_vii_observation_none_reach_10(self):
        assert all(s.gflops_per_watt < 10.0 for s in PROCESSOR_TABLE)

    def test_gamma_identities(self):
        for s in PROCESSOR_TABLE:
            assert s.gamma_e == pytest.approx(s.gamma_t * s.tdp_watts, rel=1e-12)
            assert s.gflops_per_watt == pytest.approx(1e-9 / s.gamma_e, rel=1e-12)


class TestTableIDerivations:
    def test_gamma_t(self):
        assert derive_gamma_t(396.8) == pytest.approx(2.5202e-12, rel=1e-4)

    def test_gamma_e(self):
        assert derive_gamma_e(150.0, 396.8) == pytest.approx(3.78024e-10, rel=1e-4)

    def test_peak(self):
        assert derive_peak_gflops(3.1, 8, 8) == pytest.approx(396.8)

    def test_beta_t(self):
        assert derive_beta_t(4, 25.6) == pytest.approx(1.5625e-10)
        # Table I prints 1.56e-10.
        assert derive_beta_t(4, 25.6) == pytest.approx(JAKETOWN.beta_t, rel=5e-3)

    def test_beta_e_stated_rule(self):
        # The stated derivation gives 3.36e-10, NOT the printed 3.78e-10;
        # the discrepancy is documented, both values are checked.
        derived = derive_beta_e(1.5625e-10, 2.15)
        assert derived == pytest.approx(3.359e-10, rel=1e-3)
        assert JAKETOWN.beta_e == pytest.approx(3.78024e-10)

    def test_delta_e(self):
        # 8 DIMMs x 3.1 W over 2^32 words reproduces the printed value.
        assert derive_delta_e(8, 3.1, 2.0**32) == pytest.approx(5.7742e-9, rel=1e-4)

    def test_derivation_validation(self):
        with pytest.raises(ParameterError):
            derive_gamma_t(0.0)
        with pytest.raises(ParameterError):
            derive_beta_t(0, 25.6)
        with pytest.raises(ParameterError):
            derive_delta_e(0, 3.1, 100)

    def test_jaketown_machine_override(self):
        m = jaketown_machine(epsilon_e=1.0)
        assert m.epsilon_e == 1.0
        assert m.gamma_t == JAKETOWN.gamma_t

    def test_spec_roundtrip(self):
        assert JAKETOWN_SPEC["peak_fp_gflops"] == pytest.approx(
            derive_peak_gflops(
                JAKETOWN_SPEC["core_freq_ghz"],
                int(JAKETOWN_SPEC["cores_per_node"]),
                int(JAKETOWN_SPEC["simd_single"]),
            )
        )


class TestCaseStudy:
    def test_constants(self):
        assert CASE_STUDY_N == 35000
        assert CASE_STUDY_P == 2

    def test_beta_e_scaling_has_no_effect(self):
        """Fig. 6: halving beta_e is invisible at M = 2^34."""
        series = scale_parameters_independently(6)["beta_e"]
        assert series[-1] / series[0] < 1.001

    def test_gamma_e_scaling_saturates(self):
        """Fig. 6: gamma_e's benefit levels off after ~5 generations."""
        series = scale_parameters_independently(10)["gamma_e"]
        early_gain = series[2] / series[0]
        late_gain = series[10] / series[8]
        assert early_gain > 1.3
        assert late_gain < 1.05
        sat = efficiency_saturation_limit("gamma_e")
        assert series[-1] < sat <= series[-1] * 1.05

    def test_joint_scaling_doubles_each_generation(self):
        """Fig. 7: with alpha_e = eps_e = 0 every energy term halves."""
        series = scale_parameters_jointly(6)
        for a, b in zip(series, series[1:]):
            assert b / a == pytest.approx(2.0, rel=1e-9)

    def test_75_gflops_reached_around_five_generations(self):
        """The paper: 'we obtain a desired efficiency of 75 GFLOPS/W
        after 5 generations if we are able to improve all three
        parameters together.'"""
        g = generations_to_target(75.0)
        assert 4.0 < g < 7.0

    def test_target_already_met(self):
        assert generations_to_target(0.1) == 0.0

    def test_unreachable_target(self):
        # Scaling only energy parameters cannot beat 1/(time-side) limits
        # forever... it actually can here (all terms carry a scaled
        # parameter), so emulate a floor with eps_e > 0 unscaled:
        leaky = JAKETOWN.replace(epsilon_e=1.0)
        with pytest.raises(InfeasibleError):
            generations_to_target(1e12, machine=leaky, max_generations=10)

    def test_saturation_validation(self):
        with pytest.raises(ParameterError):
            efficiency_saturation_limit("gamma_t")

    def test_crossover_bundle(self):
        bundle = crossover_generation_table(generations=6)
        assert set(bundle["independent"].keys()) == {"gamma_e", "beta_e", "delta_e"}
        assert len(bundle["joint"]) == 7
        assert bundle["generations_to_target"] > 0

    def test_gflops_per_watt_model(self):
        eff = matmul_gflops_per_watt(JAKETOWN)
        # Below the gamma_e-only bound 2.645 (other terms add energy).
        assert 0.5 < eff < 2.645

    def test_invalid_n(self):
        with pytest.raises(ParameterError):
            matmul_gflops_per_watt(JAKETOWN, n=0)
