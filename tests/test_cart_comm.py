"""Tests for Cartesian topologies and sub-communicators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CommunicatorError, RankFailedError
from repro.simmpi.cart import CartComm, factor_grid
from repro.simmpi.engine import run_spmd


class TestFactorGrid:
    def test_square(self):
        assert factor_grid(16, 2) == (4, 4)

    def test_cube(self):
        assert factor_grid(27, 3) == (3, 3, 3)

    def test_product_invariant(self):
        for p in (1, 2, 6, 12, 30, 64, 100):
            for d in (1, 2, 3):
                dims = factor_grid(p, d)
                assert len(dims) == d
                assert np.prod(dims) == p

    @given(st.integers(min_value=1, max_value=512),
           st.integers(min_value=1, max_value=4))
    def test_property(self, p, d):
        dims = factor_grid(p, d)
        assert np.prod(dims) == p
        assert all(x >= 1 for x in dims)
        assert tuple(sorted(dims, reverse=True)) == dims

    def test_invalid(self):
        with pytest.raises(CommunicatorError):
            factor_grid(0, 2)


class TestCoordinates:
    def test_row_major_mapping(self):
        def prog(comm):
            cc = CartComm(comm, (2, 3))
            return cc.coords

        out = run_spmd(6, prog)
        assert out.results == ((0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2))

    def test_roundtrip(self):
        def prog(comm):
            cc = CartComm(comm, (2, 2, 2))
            return cc.coords_to_rank(cc.rank_to_coords(comm.rank)) == comm.rank

        assert all(run_spmd(8, prog).results)

    def test_periodic_wraparound(self):
        def prog(comm):
            cc = CartComm(comm, (4,))
            return cc.coords_to_rank((5,))  # wraps to 1

        assert run_spmd(4, prog).results[0] == 1

    def test_nonperiodic_out_of_bounds(self):
        def prog(comm):
            cc = CartComm(comm, (4,), periodic=False)
            cc.coords_to_rank((5,))

        with pytest.raises(RankFailedError):
            run_spmd(4, prog)

    def test_dims_must_tile(self):
        def prog(comm):
            CartComm(comm, (2, 2))

        with pytest.raises(RankFailedError):
            run_spmd(6, prog)


class TestShift:
    def test_shift_ranks(self):
        def prog(comm):
            cc = CartComm(comm, (2, 2))
            return cc.shift_ranks(dim=1, displacement=1)

        out = run_spmd(4, prog)
        # rank 0 = (0,0): src (0,-1)->(0,1)=1, dest (0,1)=1
        assert out.results[0] == (1, 1)

    def test_data_rotates(self):
        def prog(comm):
            cc = CartComm(comm, (4,))
            return cc.shift(comm.rank * 10, dim=0, displacement=1)

        out = run_spmd(4, prog)
        assert out.results == (30, 0, 10, 20)

    def test_negative_displacement(self):
        def prog(comm):
            cc = CartComm(comm, (4,))
            return cc.shift(comm.rank, dim=0, displacement=-1)

        out = run_spmd(4, prog)
        assert out.results == (1, 2, 3, 0)

    def test_row_shift_independent_rows(self):
        def prog(comm):
            cc = CartComm(comm, (2, 2))
            i, j = cc.coords
            got = cc.shift((i, j), dim=1, displacement=1)
            return got[0] == i  # data never leaves the row

        assert all(run_spmd(4, prog).results)

    def test_bad_dim(self):
        def prog(comm):
            CartComm(comm, (2, 2)).shift(1, dim=5, displacement=1)

        with pytest.raises(RankFailedError):
            run_spmd(4, prog)


class TestSub:
    def test_rows_and_columns(self):
        def prog(comm):
            cc = CartComm(comm, (2, 3))
            rowwise = cc.sub((False, True))  # vary j within fixed i
            colwise = cc.sub((True, False))  # vary i within fixed j
            return (
                rowwise.comm.allgather(comm.rank),
                colwise.comm.allgather(comm.rank),
            )

        out = run_spmd(6, prog)
        # rank 4 = (1, 1): row partners {3,4,5}, column partners {1,4}
        assert out.results[4] == ([3, 4, 5], [1, 4])

    def test_cuboid_layers_and_fibers(self):
        def prog(comm):
            cc = CartComm(comm, (2, 2, 2))
            layer = cc.sub((True, True, False))
            fiber = cc.sub((False, False, True))
            return (layer.size, fiber.size, fiber.comm.allgather(comm.rank))

        out = run_spmd(8, prog)
        for r, (lsz, fsz, fibmates) in enumerate(out.results):
            assert lsz == 4 and fsz == 2
            base = r - (r % 2)
            assert fibmates == [base, base + 1]

    def test_sub_local_rank_follows_kept_coords(self):
        def prog(comm):
            cc = CartComm(comm, (2, 3))
            row = cc.sub((False, True))
            return row.comm.rank == cc.coords[1]

        assert all(run_spmd(6, prog).results)

    def test_axis_helper(self):
        def prog(comm):
            cc = CartComm(comm, (2, 2))
            ax = cc.axis(0)
            return (ax.dims, ax.comm.size)

        out = run_spmd(4, prog)
        assert out.results[0] == ((2,), 2)

    def test_sub_comms_isolated(self):
        """Traffic on a sub-communicator must not leak into the parent."""

        def prog(comm):
            cc = CartComm(comm, (2, 2))
            row = cc.sub((False, True))
            row.comm.send(comm.rank, (row.comm.rank + 1) % 2, tag=0)
            got = row.comm.recv((row.comm.rank + 1) % 2, tag=0)
            return got

        out = run_spmd(4, prog)
        assert out.results == (1, 0, 3, 2)

    def test_wrong_remain_length(self):
        def prog(comm):
            CartComm(comm, (2, 2)).sub((True,))

        with pytest.raises(RankFailedError):
            run_spmd(4, prog)


class TestSplitDup:
    def test_split_groups_by_color(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            return sorted(sub.allgather(comm.rank))

        out = run_spmd(6, prog)
        assert out.results[0] == [0, 2, 4]
        assert out.results[1] == [1, 3, 5]

    def test_split_key_orders(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reversed order
            return sub.rank

        out = run_spmd(4, prog)
        assert out.results == (3, 2, 1, 0)

    def test_split_metadata_unmetered(self):
        out = run_spmd(4, lambda comm: comm.split(color=0) and None)
        assert out.report.total_words == 0
        assert out.report.total_messages == 0

    def test_nested_splits_isolated_contexts(self):
        def prog(comm):
            a = comm.split(color=comm.rank % 2)
            b = comm.split(color=comm.rank % 2)
            # same partner sets, different contexts: no crosstalk
            a.send("A", (a.rank + 1) % a.size, tag=0)
            b.send("B", (b.rank + 1) % b.size, tag=0)
            got_b = b.recv((b.rank + 1) % b.size, tag=0)
            got_a = a.recv((a.rank + 1) % a.size, tag=0)
            return (got_a, got_b)

        out = run_spmd(4, prog)
        assert all(v == ("A", "B") for v in out.results)

    def test_dup(self):
        def prog(comm):
            d = comm.dup()
            return (d.size, d.rank) == (comm.size, comm.rank)

        assert all(run_spmd(3, prog).results)

    def test_world_rank_preserved_through_split(self):
        def prog(comm):
            sub = comm.split(color=comm.rank // 2)
            return sub.world_rank == comm.rank

        assert all(run_spmd(6, prog).results)
