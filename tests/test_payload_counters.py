"""Tests for payload word accounting, copies, and cost counters."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import CommunicatorError, ParameterError
from repro.simmpi.counters import CostCounter
from repro.simmpi.payload import copy_payload, message_count, payload_words


class TestPayloadWords:
    def test_none_is_free(self):
        assert payload_words(None) == 0

    def test_scalars(self):
        assert payload_words(3) == 1
        assert payload_words(3.5) == 1
        assert payload_words(1 + 2j) == 1
        assert payload_words(True) == 1
        assert payload_words(np.float64(1.0)) == 1

    def test_arrays_by_element(self):
        assert payload_words(np.zeros((3, 4))) == 12
        assert payload_words(np.zeros(7, dtype=np.int8)) == 7  # words, not bytes

    def test_containers(self):
        assert payload_words([np.zeros(3), 2.0]) == 4
        assert payload_words((np.zeros(2), np.zeros(2))) == 4
        assert payload_words({"a": np.zeros(5), "b": 1}) == 6

    def test_strings(self):
        assert payload_words("x") == 1
        assert payload_words("x" * 16) == 2
        assert payload_words(b"12345678") == 1

    def test_custom_hook(self):
        class Blob:
            def __payload_words__(self):
                return 42

        assert payload_words(Blob()) == 42

    def test_unknown_type_rejected(self):
        with pytest.raises(CommunicatorError):
            payload_words(object())

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=5))
    def test_nested_lists_sum(self, sizes):
        payload = [np.zeros(s) for s in sizes]
        assert payload_words(payload) == sum(sizes)


class TestCopyPayload:
    def test_array_is_independent(self):
        a = np.arange(5)
        b = copy_payload(a)
        b[0] = 99
        assert a[0] == 0

    def test_nested_containers_deep(self):
        payload = {"x": [np.arange(3)], "y": (np.arange(2),)}
        out = copy_payload(payload)
        out["x"][0][0] = 99
        assert payload["x"][0][0] == 0

    def test_scalars_passthrough(self):
        assert copy_payload(5) == 5
        assert copy_payload(None) is None
        assert copy_payload("s") == "s"

    def test_noncontiguous_array(self):
        a = np.arange(16).reshape(4, 4).T
        b = copy_payload(a)
        assert np.array_equal(a, b)
        assert b.flags["C_CONTIGUOUS"]


class TestMessageCount:
    def test_zero_words_is_one_message(self):
        # Pure synchronization still costs a message (paper Section II).
        assert message_count(0, 100) == 1

    def test_fits_one(self):
        assert message_count(100, 100) == 1

    def test_ceil(self):
        assert message_count(101, 100) == 2
        assert message_count(1000, 100) == 10
        assert message_count(1001, 100) == 11

    def test_unbounded(self):
        assert message_count(10**12, math.inf) == 1

    @given(st.integers(min_value=1, max_value=10**6),
           st.integers(min_value=1, max_value=10**4))
    def test_matches_ceil_formula(self, words, m):
        assert message_count(words, m) == -(-words // m)


class TestCostCounter:
    def test_flops_accumulate(self):
        c = CostCounter(rank=0)
        c.add_flops(10)
        c.add_flops(5.5)
        assert c.flops == 15.5

    def test_negative_flops_rejected(self):
        with pytest.raises(ParameterError):
            CostCounter(rank=0).add_flops(-1)

    def test_send_recv_tallies(self):
        c = CostCounter(rank=1)
        c.add_send(100, 2)
        c.add_recv(50, 1)
        s = c.snapshot()
        assert (s.words_sent, s.messages_sent) == (100, 2)
        assert (s.words_received, s.messages_received) == (50, 1)
        assert s.words == 100 and s.messages == 2

    def test_memory_high_water(self):
        c = CostCounter(rank=0)
        c.allocate(100)
        c.allocate(50)
        assert c.mem_peak_words == 150
        c.release()
        c.allocate(10)
        assert c.mem_words == 110
        assert c.mem_peak_words == 150

    def test_release_without_allocate(self):
        with pytest.raises(ParameterError):
            CostCounter(rank=0).release()

    def test_snapshot_immutable(self):
        c = CostCounter(rank=3)
        s = c.snapshot()
        with pytest.raises(AttributeError):
            s.flops = 1.0  # type: ignore[misc]
