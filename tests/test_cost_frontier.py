"""Tests for the generic (p, M) frontier — the tech-report extension of
Fig. 4 to matmul/Strassen."""

import numpy as np
import pytest

from repro.analysis.frontier import CostModelFrontier, NBodyFrontier
from repro.core.costs import (
    ClassicalMatMulCosts,
    NBodyCosts,
    StrassenMatMulCosts,
)
from repro.core.optimize import NBodyOptimizer
from repro.exceptions import ParameterError


@pytest.fixture
def fr(machine):
    return CostModelFrontier(ClassicalMatMulCosts(), machine, n=1e4)


def axes(fr, p_points=12, m_points=12):
    n = fr.n
    p = np.geomspace(4, 1e6, p_points)
    M = np.geomspace(n, n * n, m_points)
    return p, M


class TestWedge:
    def test_memory_limits_matmul(self, fr):
        p = np.array([100.0])
        lo, hi = fr.memory_limits(p)
        assert lo[0] == pytest.approx(1e8 / 100)
        assert hi[0] == pytest.approx(min(1e8 / 100 ** (2 / 3), fr.machine.memory_words))

    def test_machine_memory_caps_wedge(self, machine):
        tight = machine.replace(memory_words=1e5, max_message_words=1e4)
        fr = CostModelFrontier(ClassicalMatMulCosts(), tight, n=1e4)
        _, hi = fr.memory_limits(np.array([4.0]))
        assert hi[0] == 1e5

    def test_grid_masks_outside(self, fr):
        p, M = axes(fr)
        grid = fr.grid(p, M)
        assert grid.feasible.any()
        assert np.isnan(grid.energy[~grid.feasible]).all()
        assert np.isfinite(grid.energy[grid.feasible]).all()

    def test_invalid(self, fr):
        with pytest.raises(ParameterError):
            fr.grid(np.array([-1.0]), np.array([10.0]))
        with pytest.raises(ParameterError):
            CostModelFrontier(ClassicalMatMulCosts(), fr.machine, 0)


class TestEnergyStructure:
    def test_matmul_energy_constant_along_p(self, fr):
        """The headline fact holds on the matmul frontier too."""
        p, M = axes(fr, p_points=20)
        grid = fr.grid(p, M)
        for mi in range(len(M)):
            vals = grid.energy[mi][np.isfinite(grid.energy[mi])]
            if len(vals) > 1:
                assert np.allclose(vals, vals[0], rtol=1e-9)

    def test_time_falls_along_p(self, fr):
        p, M = axes(fr, p_points=20)
        grid = fr.grid(p, M)
        for mi in range(len(M)):
            row = grid.time[mi]
            finite = np.isfinite(row)
            vals = row[finite]
            if len(vals) > 1:
                assert np.all(np.diff(vals) < 0)

    def test_strassen_wedge_narrower(self, machine):
        n = 1e4
        frc = CostModelFrontier(ClassicalMatMulCosts(), machine, n)
        frs = CostModelFrontier(StrassenMatMulCosts(), machine, n)
        p = np.array([1e4])
        _, hi_c = frc.memory_limits(p)
        _, hi_s = frs.memory_limits(p)
        assert hi_s[0] <= hi_c[0]

    def test_agrees_with_nbody_closed_form(self, machine):
        """Generic frontier == closed-form NBodyFrontier on the same grid."""
        n = 1e6
        f = 10.0
        generic = CostModelFrontier(NBodyCosts(interaction_flops=f), machine, n)
        closed = NBodyFrontier(NBodyOptimizer(machine, interaction_flops=f), n)
        p = np.geomspace(10, 1e5, 10)
        M = np.geomspace(n / 1e5, n, 10)
        g1 = generic.grid(p, M)
        g2 = closed.grid(p, M)
        # The generic wedge additionally caps M at physical memory; it
        # can only be a subset of the closed-form wedge.
        assert not (g1.feasible & ~g2.feasible).any()
        both = g1.feasible & g2.feasible
        assert both.any()
        assert np.allclose(g1.energy[both], g2.energy[both], rtol=1e-9)
        assert np.allclose(g1.time[both], g2.time[both], rtol=1e-9)


class TestRegions:
    def test_energy_budget_nested(self, fr):
        p, M = axes(fr)
        grid = fr.grid(p, M)
        e_min = np.nanmin(grid.energy)
        small = fr.energy_budget_region(grid, e_min * 1.01)
        large = fr.energy_budget_region(grid, e_min * 10)
        assert small.sum() <= large.sum()
        assert not (small & ~large).any()

    def test_time_budget_prefers_large_p(self, fr):
        p, M = axes(fr)
        grid = fr.grid(p, M)
        t_min = np.nanmin(grid.time)
        region = fr.time_budget_region(grid, t_min * 4)
        assert region.any()
        # Every admitted cell is in the faster (right) half of its row's
        # feasible span.
        for mi in range(len(M)):
            cols = np.nonzero(region[mi])[0]
            feas = np.nonzero(grid.feasible[mi])[0]
            if len(cols) and len(feas) > 1:
                assert cols.max() == feas.max()

    def test_total_power_region(self, fr):
        p, M = axes(fr)
        grid = fr.grid(p, M)
        with np.errstate(invalid="ignore"):
            powers = grid.energy / grid.time
        cap = np.nanmin(powers) * 5
        region = fr.total_power_region(grid, cap)
        assert region.any()
        assert not (region & ~grid.feasible).any()

    def test_budget_validation(self, fr):
        p, M = axes(fr)
        grid = fr.grid(p, M)
        with pytest.raises(ParameterError):
            fr.energy_budget_region(grid, 0)
        with pytest.raises(ParameterError):
            fr.time_budget_region(grid, -1)
        with pytest.raises(ParameterError):
            fr.total_power_region(grid, 0)
