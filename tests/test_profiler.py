"""Tests for the model-term attribution profiler."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.profiler import (
    ENERGY_TERM_KEYS,
    TIME_TERM_KEYS,
    ModelProfile,
    profile_strong_scaling_matmul,
    render_term_sweep,
)
from repro.cli import TRACE_WORKLOADS, _build_trace_program
from repro.exceptions import ParameterError
from repro.simmpi import run_spmd


def ring_prog(comm, words: int = 8, rounds: int = 2) -> float:
    block = np.full(words, float(comm.rank), dtype=np.float64)
    total = 0.0
    for _ in range(rounds):
        block = comm.shift(block, 1)
        comm.add_flops(2.0 * words, label="fold")
        total += float(block[0])
    comm.allreduce(total)
    return total


class TestBitExactness:
    """The tentpole contract: term sums replay the model evaluation."""

    @pytest.mark.parametrize("workload", sorted(TRACE_WORKLOADS))
    def test_terms_reproduce_model_totals(self, workload, machine):
        p, n, _ = TRACE_WORKLOADS[workload]
        program, prog_args, label = _build_trace_program(workload, p, n)
        out = run_spmd(p, program, *prog_args, trace=True)
        prof = ModelProfile.from_result(out, machine, label=label)
        # Exact equality, not approx: the profiler must be a view of
        # the breakdowns, never a re-derivation that could drift.
        assert (
            sum(prof.time_terms.values())
            == out.report.estimate_time(machine).total
        )
        assert (
            sum(prof.energy_terms.values())
            == out.report.estimate_energy(machine).total
        )

    def test_term_key_order_matches_breakdown_sum_order(self, machine):
        out = run_spmd(4, ring_prog)
        prof = ModelProfile.from_result(out, machine)
        assert tuple(prof.time_terms) == TIME_TERM_KEYS
        assert tuple(prof.energy_terms) == ENERGY_TERM_KEYS

    def test_critical_rank_bounded_by_run_total(self, machine):
        out = run_spmd(4, ring_prog)
        prof = ModelProfile.from_result(out, machine)
        # The run breakdown takes per-term maxima, which can come from
        # different ranks — the critical rank never exceeds it.
        crit = sum(prof.rank_terms(prof.critical_rank).values())
        assert crit <= prof.time.total * (1 + 1e-12)
        assert 0 <= prof.critical_rank < prof.size


class TestPhases:
    def test_phase_rows_present_and_priced(self, machine):
        out = run_spmd(4, ring_prog, trace=True)
        prof = ModelProfile.from_result(out, machine)
        assert prof.phases is not None
        rows = {ph.name: ph for ph in prof.phases}
        assert {"p2p-send", "allreduce", "fold"} <= set(rows)
        send = rows["p2p-send"]
        assert send.words > 0 and send.messages > 0
        assert send.time_terms["betaW"] == machine.beta_t * send.words
        fold = rows["fold"]
        assert fold.flops > 0
        assert fold.time_terms["gammaF"] == machine.gamma_t * fold.flops

    def test_p2p_wait_not_double_counted(self, machine):
        out = run_spmd(4, ring_prog, trace=True)
        prof = ModelProfile.from_result(out, machine)
        rows = {ph.name: ph for ph in prof.phases}
        if "p2p-wait" in rows:  # present unless no recv stalled at depth 0
            wait = rows["p2p-wait"]
            # Received words are already priced on the send row.
            assert wait.words == 0.0 and wait.messages == 0.0
            assert wait.time_terms["betaW"] == 0.0
            assert wait.time_terms["alphaS"] == 0.0

    def test_untraced_run_has_no_phases(self, machine):
        out = run_spmd(2, ring_prog)
        prof = ModelProfile.from_result(out, machine)
        assert prof.phases is None
        with pytest.raises(ParameterError):
            prof.render_phases()

    def test_dropped_events_flagged(self, machine):
        out = run_spmd(2, ring_prog, trace=True, trace_capacity=4)
        with pytest.warns(RuntimeWarning, match="dropped"):
            prof = ModelProfile.from_result(out, machine)
        assert prof.dropped_events > 0
        assert "warning" in prof.render_phases()

    def test_timeline_warns_and_reports_drops_per_rank(self):
        out = run_spmd(2, ring_prog, trace=True, trace_capacity=4)
        with pytest.warns(RuntimeWarning, match="dropped"):
            tl = out.timeline()
        by_rank = tl.dropped_by_rank()
        assert by_rank and all(v > 0 for v in by_rank.values())
        assert sum(by_rank.values()) == tl.dropped


class TestExportAndRender:
    def test_to_json_schema_and_round_trip(self, machine):
        out = run_spmd(4, ring_prog, trace=True)
        prof = ModelProfile.from_result(out, machine, label="ring")
        payload = json.loads(json.dumps(prof.to_json()))
        assert payload["schema"] == "repro_profile/v1"
        assert payload["label"] == "ring"
        assert payload["p"] == 4
        assert len(payload["per_rank"]) == 4
        assert payload["time"]["total"] == sum(
            payload["time"]["terms"].values()
        )
        assert payload["energy"]["total"] == sum(
            payload["energy"]["terms"].values()
        )
        assert payload["phases"] is not None

    def test_untraced_json_has_null_phases(self, machine):
        out = run_spmd(2, ring_prog)
        payload = ModelProfile.from_result(out, machine).to_json()
        assert payload["phases"] is None

    def test_render_sections(self, machine):
        out = run_spmd(4, ring_prog, trace=True)
        prof = ModelProfile.from_result(out, machine, label="ring")
        text = prof.render(width=32)
        assert "model profile: ring on p=4" in text
        assert "Eq. (1) time per term" in text
        assert "Eq. (2) energy per term" in text
        assert f"critical rank: {prof.critical_rank}" in text
        assert f"*rank {prof.critical_rank}" in text
        assert "phase" in text  # the traced phase table rides along


class TestStrongScalingSweep:
    """Per-term face of the paper's headline theorem (fixed tiles)."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return profile_strong_scaling_matmul(96, q=6, c_values=(1, 2, 3))

    def test_p_grows_with_c(self, sweep):
        assert [prof.size for prof in sweep] == [36, 72, 108]

    def test_time_compute_term_scales_exactly_1_over_c(self, sweep):
        tt = [prof.time_terms["gammaF"] for prof in sweep]
        # Work divides exactly across the c replicas, so the critical
        # rank's flop count — and gamma_t times it — is exactly 1/c.
        assert tt[0] == 2 * tt[1]
        assert tt[0] == 3 * tt[2]

    def test_time_bandwidth_term_falls(self, sweep):
        bw = [prof.time_terms["betaW"] for prof in sweep]
        # Measured: 0.711x at c=2, 0.619x at c=3 (the 2.5D bcast/reduce
        # constants keep it above the ideal 1/c).
        assert bw[1] < 0.78 * bw[0]
        assert bw[2] < 0.68 * bw[0]

    def test_time_latency_term_subdominant(self, sweep):
        for prof in sweep:
            assert prof.time_terms["alphaS"] < 0.1 * prof.time.total

    def test_time_total_strong_scales(self, sweep):
        t = [prof.time.total for prof in sweep]
        assert t[1] < 0.70 * t[0]
        assert t[2] < 0.55 * t[0]

    def test_energy_compute_term_exactly_flat(self, sweep):
        et = [prof.energy_terms["gammaF"] for prof in sweep]
        assert et[0] == et[1] == et[2]  # total flops independent of c

    def test_energy_terms_bounded(self, sweep):
        eb = [prof.energy_terms["betaW"] for prof in sweep]
        em = [prof.energy_terms["deltaMT"] for prof in sweep]
        # Measured: betaW 1.36x/1.64x, deltaMT 1.18x/1.38x — bounded
        # growth from the replication collectives, not runaway cost.
        assert eb[1] < 1.5 * eb[0] and eb[2] < 1.8 * eb[0]
        assert em[1] < 1.35 * em[0] and em[2] < 1.55 * em[0]

    def test_energy_total_roughly_flat(self, sweep):
        e = [prof.energy.total for prof in sweep]
        for val in e[1:]:
            assert abs(val - e[0]) <= 0.35 * e[0]

    def test_memory_words_fixed_tiles(self, sweep):
        assert len({prof.memory_words for prof in sweep}) == 1
        assert sweep[0].memory_words == 3 * (96 // 6) ** 2

    def test_render_term_sweep_table(self, sweep):
        text = render_term_sweep(sweep)
        assert "T:gammaF" in text and "E:deltaMT" in text
        assert "    36" in text and "   108" in text

    def test_render_term_sweep_rejects_empty(self):
        with pytest.raises(ParameterError):
            render_term_sweep([])

    def test_rejects_c_not_dividing_q(self):
        with pytest.raises(ParameterError):
            profile_strong_scaling_matmul(24, q=6, c_values=(4,))
