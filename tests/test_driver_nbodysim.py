"""Tests for the matmul driver (the paper's prescription as code) and
the n-body time-integration loop."""

import numpy as np
import pytest

from repro.algorithms.driver import (
    choose_replication,
    matmul,
    replication_speedup_model,
)
from repro.algorithms.nbody import GRAVITY, nbody_serial
from repro.algorithms.nbody_sim import simulate_replicated, simulate_serial
from repro.exceptions import ParameterError, RankFailedError
from repro.simmpi.engine import run_spmd


class TestChooseReplication:
    def test_unbounded_memory_hits_3d_limit(self):
        # p = 8 = 2^2 * 2 with q = 2, c = 2 = p^(1/3).
        assert choose_replication(n=24, p=8, memory_words=1e12) == 2

    def test_p27_goes_3d(self):
        assert choose_replication(n=27, p=27, memory_words=1e12) == 3

    def test_memory_gates_layout(self):
        """Tight memory forces the finer grid (larger q, c = 1)."""
        n = 64
        # c=4 needs q=4 -> tiles 16x16 -> 3*256 = 768 words;
        # c=1 needs q=8 -> tiles 8x8 -> 3*64 = 192 words.
        assert (
            choose_replication(n, 64, memory_words=1000,
                               objective="max_replication")
            == 4
        )
        assert (
            choose_replication(n, 64, memory_words=500,
                               objective="max_replication")
            == 1
        )

    def test_min_words_objective_avoids_3d_corner(self):
        """At a fixed p the replication collectives' constants can beat
        the sqrt(c) saving: min_words declines the 3D corner that
        max_replication takes."""
        n = 64
        assert choose_replication(n, 64, 1e12, objective="min_words") == 1
        assert choose_replication(n, 64, 1e12, objective="max_replication") == 4

    def test_min_words_prefers_replication_when_rounds_amortize(self):
        """With q/c large the Cannon rounds dominate and replication wins
        under min_words too."""
        n = 144
        # p = 288 = 12^2 * 2: c=2, q=12, q/c=6 -> 2*12/2+3.5 = 15.5 tiles
        # of (n/12)^2 vs ... c=1 inadmissible (288 not square), so use a
        # p with both options: p = 576 = 24^2 (c=1) = 12^2*4 (c=4).
        c = choose_replication(n, 576, 1e12, objective="min_words")
        # c=1: q=24, 2*24 = 48 tiles of (n/24)^2 = 36 -> 1728 words
        # c=4: q=12, 2*3+3.5 = 9.5 tiles of (n/12)^2 = 144 -> 1368 words
        assert c == 4

    def test_bad_objective(self):
        with pytest.raises(ParameterError):
            choose_replication(8, 4, 100, objective="vibes")

    def test_square_p_always_has_c1(self):
        assert choose_replication(n=60, p=4, memory_words=1e12) >= 1

    def test_impossible_layout(self):
        with pytest.raises(ParameterError):
            choose_replication(n=24, p=5, memory_words=1e12)

    def test_memory_too_small(self):
        with pytest.raises(ParameterError):
            choose_replication(n=64, p=4, memory_words=10)

    def test_speedup_model(self):
        s = replication_speedup_model(n=64, p=64, memory_words=1e12)
        assert s == pytest.approx(2.0)  # c = 4 -> sqrt(4)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            choose_replication(0, 4, 100)
        with pytest.raises(ParameterError):
            choose_replication(8, 4, 0)


class TestMatmulDriver:
    @pytest.mark.parametrize("p", [1, 4, 8, 16, 27])
    def test_correct_everywhere(self, p, rng):
        n = 24 if p != 27 else 27
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        out = run_spmd(p, matmul, a, b)
        for got in out.results:
            assert np.allclose(got, a @ b)

    def test_fast_route_uses_caps(self, rng):
        n = 14
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        out = run_spmd(7, matmul, a, b, 1e12, True)
        for got in out.results:
            assert np.allclose(got, a @ b)
        # CAPS fingerprint: fewer multiply flops than classical 2 n^3
        # (Strassen base savings) plus the gather traffic.
        assert out.report.total_flops < 2.1 * n**3

    def test_p16_only_c1_admissible(self, rng):
        # p=16: c=2 -> p/c=8 not square; c=4 -> q=2 < c. Only c=1 fits.
        assert choose_replication(48, 16, 1e12) == 1
        assert choose_replication(48, 16, 1e12, objective="max_replication") == 1

    def test_single_rank(self, rng):
        a = rng.standard_normal((5, 5))
        out = run_spmd(1, matmul, a, a)
        assert np.allclose(out.results[0], a @ a)

    def test_shape_validation(self):
        with pytest.raises(RankFailedError):
            run_spmd(4, matmul, np.zeros((4, 4)), np.zeros((6, 6)))


def total_energy(pos, vel, masses, eps=1e-12):
    """Kinetic + softened gravitational potential (matches GRAVITY)."""
    ke = 0.5 * float(np.sum(masses[:, None] * vel**2))
    diff = pos[None, :, :] - pos[:, None, :]
    dist = np.sqrt(np.sum(diff * diff, axis=2) + eps)
    iu = np.triu_indices(len(pos), k=1)
    pe = -float(np.sum(masses[iu[0]] * masses[iu[1]] / dist[iu]))
    return ke + pe


@pytest.fixture
def system(rng):
    n = 24
    pos = rng.standard_normal((n, 3)) * 2.0
    vel = rng.standard_normal((n, 3)) * 0.05
    masses = rng.uniform(0.5, 1.5, n)
    return pos, vel, masses


class TestSerialSimulation:
    def test_runs_and_moves(self, system):
        pos, vel, masses = system
        res = simulate_serial(pos, vel, masses, dt=1e-3, steps=10)
        assert res.positions.shape == pos.shape
        assert not np.allclose(res.positions, pos)

    def test_energy_drift_bounded(self, system):
        """Velocity-Verlet is symplectic: physical energy drift over a
        short run stays small."""
        pos, vel, masses = system
        e0 = total_energy(pos, vel, masses)
        res = simulate_serial(pos, vel, masses, dt=5e-4, steps=50)
        e1 = total_energy(res.positions, res.velocities, masses)
        assert abs(e1 - e0) / abs(e0) < 0.05

    def test_momentum_conserved(self, system):
        pos, vel, masses = system
        p0 = (masses[:, None] * vel).sum(axis=0)
        res = simulate_serial(pos, vel, masses, dt=1e-3, steps=20)
        p1 = (masses[:, None] * res.velocities).sum(axis=0)
        assert np.allclose(p0, p1, atol=1e-9)

    def test_validation(self, system):
        pos, vel, masses = system
        with pytest.raises(ParameterError):
            simulate_serial(pos, vel, masses, dt=0, steps=5)
        with pytest.raises(ParameterError):
            simulate_serial(pos, vel, masses, dt=1e-3, steps=0)
        with pytest.raises(ParameterError):
            simulate_serial(pos, vel[:3], masses, dt=1e-3, steps=1)


class TestParallelSimulation:
    @pytest.mark.parametrize("p,c", [(4, 1), (4, 2), (8, 2), (16, 4)])
    def test_matches_serial_trajectory(self, p, c, system):
        pos, vel, masses = system
        ref = simulate_serial(pos, vel, masses, dt=1e-3, steps=5)
        out = run_spmd(p, simulate_replicated, pos, vel, masses, 1e-3, 5, c)
        leaders = [res for res in out.results if res is not None]
        assert len(leaders) == p // c
        for res in leaders:
            assert np.allclose(res.positions, ref.positions, atol=1e-10)
            assert np.allclose(res.velocities, ref.velocities, atol=1e-10)

    def test_communication_scales_with_steps(self, system):
        pos, vel, masses = system
        w1 = run_spmd(
            4, simulate_replicated, pos, vel, masses, 1e-3, 2, 2
        ).report.max_words
        w3 = run_spmd(
            4, simulate_replicated, pos, vel, masses, 1e-3, 6, 2
        ).report.max_words
        # Forces are evaluated steps+1 times; traffic ~ proportional.
        assert 2.0 < w3 / w1 < 3.5

    def test_replication_cuts_per_step_traffic(self, rng):
        n = 48
        pos = rng.standard_normal((n, 3))
        vel = rng.standard_normal((n, 3)) * 0.01
        masses = np.ones(n)
        w_c1 = run_spmd(
            4, simulate_replicated, pos, vel, masses, 1e-3, 3, 1
        ).report.max_words
        w_c4 = run_spmd(
            16, simulate_replicated, pos, vel, masses, 1e-3, 3, 4
        ).report.max_words
        assert w_c4 < w_c1

    def test_bad_team_split(self, system):
        pos, vel, masses = system
        with pytest.raises(RankFailedError):
            run_spmd(8, simulate_replicated, pos, vel, masses, 1e-3, 2, 4)
