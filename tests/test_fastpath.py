"""Fast-path equivalence and fallback tests.

The analytic collective fast path (:mod:`repro.simmpi.fastpath`)
promises bit-identical ``counts_signature()``, per-rank virtual clocks
and payload contents versus the faithful message-path simulation. The
matrix here exercises that promise over every collective, both payload
modes and several world sizes, and verifies that each observer that
needs real envelopes (tracing, metrics, fault plans, custom reduce
ops, non-default algorithms, ``fastpath=False``) actually forces the
message path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import MachineParameters
from repro.exceptions import CommunicatorError, RankFailedError
from repro.simmpi import FaultPlan, SlowdownFault, run_spmd
from repro.simmpi import fastpath as fastpath_mod
from repro.simmpi.collectives import sum_op

MACHINE = MachineParameters(
    gamma_t=2e-9,
    beta_t=3e-8,
    alpha_t=5e-6,
    gamma_e=4e-9,
    beta_e=6e-8,
    alpha_e=2e-6,
    delta_e=7e-9,
    epsilon_e=1e-3,
    memory_words=float(2**30),
    max_message_words=float(2**16),
)

SIZES = (4, 16, 64)
MODES = ("copy", "cow")

# Per-destination payloads are seeded from (rank, dest) so every block
# is distinct and any routing error shows up in the contents check.
_SEED_RNG = np.random.default_rng(20260808)
_BASE = _SEED_RNG.normal(size=97)


def _payload(rank: int, n: int = 23) -> np.ndarray:
    return np.resize(_BASE, n) * (rank + 1)


def _prog_barrier(comm):
    comm.barrier()
    return comm.rank


def _prog_bcast(comm):
    obj = _payload(comm.rank) if comm.rank == 1 else None
    return comm.bcast(obj, root=1)


def _prog_reduce(comm):
    out = comm.reduce(_payload(comm.rank), root=2)
    return None if out is None else out


def _prog_allreduce(comm):
    return comm.allreduce(_payload(comm.rank))


def _prog_reduce_scatter(comm):
    return comm.reduce_scatter(_payload(comm.rank, n=4 * comm.size + 3))


def _prog_allgather(comm):
    return comm.allgather(_payload(comm.rank, n=7 + comm.rank % 3))


def _prog_gather(comm):
    return comm.gather(_payload(comm.rank, n=5 + comm.rank % 4), root=3)


def _prog_scatter(comm):
    p = comm.size
    objs = None
    if comm.rank == 2:
        objs = [_payload(r, n=6 + r % 5) for r in range(p)]
    return comm.scatter(objs, root=2)


def _prog_alltoall(comm):
    blocks = [_payload(comm.rank * comm.size + d, n=3 + d % 4) for d in range(comm.size)]
    return comm.alltoall(blocks)


def _prog_alltoall_bruck(comm):
    blocks = [_payload(comm.rank * comm.size + d, n=3 + d % 4) for d in range(comm.size)]
    return comm.alltoall_bruck(blocks)


PROGRAMS = {
    "barrier": _prog_barrier,
    "bcast": _prog_bcast,
    "reduce": _prog_reduce,
    "allreduce": _prog_allreduce,
    "reduce_scatter": _prog_reduce_scatter,
    "allgather": _prog_allgather,
    "gather": _prog_gather,
    "scatter": _prog_scatter,
    "alltoall": _prog_alltoall,
    "alltoall_bruck": _prog_alltoall_bruck,
}


def _flatten(value):
    """Strict structural normalization so ndarray contents (and their
    exact values), list shapes and scalars all compare."""
    if isinstance(value, np.ndarray):
        return ("nd", value.shape, value.tobytes())
    if isinstance(value, (list, tuple)):
        return (type(value).__name__, tuple(_flatten(v) for v in value))
    return value


def _compare_runs(size, program, **kwargs):
    fast = run_spmd(size, program, machine=MACHINE, **kwargs)
    slow = run_spmd(size, program, machine=MACHINE, fastpath=False, **kwargs)
    assert fast.report.counts_signature() == slow.report.counts_signature()
    fast_vt = [r.vtime for r in fast.report.ranks]
    slow_vt = [r.vtime for r in slow.report.ranks]
    assert fast_vt == slow_vt  # bit-identical, not approx
    assert [_flatten(r) for r in fast.results] == [_flatten(r) for r in slow.results]
    assert fast.report.words_conserved()
    return fast, slow


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("collective", sorted(PROGRAMS))
    def test_counts_vtimes_payloads_identical(self, collective, size, mode):
        _compare_runs(
            size,
            PROGRAMS[collective],
            payload_mode=mode,
            max_message_words=64.0,
        )

    def test_mixed_workload_with_nodes_and_subcomms(self):
        def program(comm):
            comm.barrier()
            half = comm.split(comm.rank % 2)
            local = half.allreduce(_payload(comm.rank))
            gathered = comm.gather(float(local.sum()), root=0)
            back = comm.bcast(gathered, root=0)
            return tuple(back)

        _compare_runs(8, program, node_size=4, max_message_words=16.0)

    def test_read_only_views_in_cow_mode(self):
        def program(comm):
            out = comm.bcast(_payload(0) if comm.rank == 0 else None, root=0)
            return out.flags.writeable

        fast = run_spmd(8, program, payload_mode="cow")
        assert fast.results == (False,) * 8

    def test_zero_and_scalar_payloads(self):
        def program(comm):
            a = comm.bcast(None if comm.rank else 0.5, root=0)
            b = comm.allgather(None)
            c = comm.gather("word" * comm.rank, root=0)
            return (a, tuple(b), None if c is None else tuple(c))

        _compare_runs(4, program)


class TestFallbacks:
    """Each per-message observer must take the envelope path. Proven by
    poisoning the resolver table: if the fast path engaged, the run
    would fail loudly."""

    @pytest.fixture
    def poisoned(self, monkeypatch):
        def boom(*_a, **_k):  # pragma: no cover - must never run
            raise AssertionError("fast path engaged but should have fallen back")

        monkeypatch.setattr(
            fastpath_mod, "_RESOLVERS", {k: boom for k in fastpath_mod._RESOLVERS}
        )

    def test_fastpath_false_forces_message_path(self, poisoned):
        out = run_spmd(4, _prog_allreduce, fastpath=False)
        assert len(out.results) == 4

    def test_trace_forces_message_path(self, poisoned):
        out = run_spmd(4, _prog_allreduce, trace=True)
        assert any(e.kind == "coll" for e in out.event_logs[0].events())

    def test_metrics_forces_message_path(self, poisoned):
        out = run_spmd(4, _prog_allreduce, metrics=True)
        assert out.metrics is not None

    def test_faults_force_message_path(self, poisoned):
        plan = FaultPlan([SlowdownFault(rank=1, factor=2.0, first_op=2, last_op=4)])
        out = run_spmd(4, _prog_allreduce, faults=plan)
        assert len(out.results) == 4

    def test_custom_op_forces_message_path(self, poisoned):
        def prog(comm):
            a = comm.reduce(float(comm.rank), op=lambda x, y: max(x, y), root=0)
            b = comm.reduce_scatter(
                np.arange(8.0), op=lambda x, y: np.maximum(x, y)
            )
            return (a, float(b.sum()))

        out = run_spmd(4, prog)
        assert out.results[0][0] == 3.0

    def test_nondefault_algorithms_force_message_path(self, poisoned):
        # Both variants below are raw point-to-point implementations —
        # no nested default-algorithm collectives to accelerate.
        def prog(comm):
            b = comm.reduce(
                np.arange(32.0), root=0, algorithm="reduce_scatter_gather"
            )
            c = comm.allreduce(float(comm.rank), algorithm="recursive_doubling")
            return (None if b is None else float(b.sum()), c)

        out = run_spmd(4, prog)
        assert out.results[0][1] == 6.0

    def test_composites_accelerate_their_inner_stages(self):
        # allreduce(reduce_bcast) and bcast(scatter_allgather) are built
        # from default-algorithm collectives, which ride the fast path
        # even though the outer composite has no resolver of its own —
        # and stay bit-identical to the full message path.
        def prog(comm):
            a = comm.allreduce(_payload(comm.rank))
            b = comm.bcast(
                np.arange(64.0) if comm.rank == 0 else None,
                root=0,
                algorithm="scatter_allgather",
            )
            return (float(a.sum()), float(b.sum()))

        _compare_runs(8, prog, max_message_words=16.0)

    def test_default_world_uses_fast_path(self, poisoned):
        with pytest.raises(RankFailedError):
            run_spmd(4, _prog_allreduce)

    def test_fastpath_enabled_property(self):
        def prog(comm):
            return comm.fastpath_enabled

        assert run_spmd(4, prog).results == (True,) * 4
        assert run_spmd(4, prog, fastpath=False).results == (False,) * 4
        assert run_spmd(4, prog, trace=True).results == (False,) * 4
        assert run_spmd(4, prog, metrics=True).results == (False,) * 4
        assert run_spmd(1, prog).results == (False,)


class TestGateErrors:
    def test_out_of_range_root_raises_everywhere(self):
        def prog(comm):
            return comm.bcast(1.0, root=99)

        with pytest.raises(RankFailedError) as info:
            run_spmd(4, prog)
        assert all(
            isinstance(e, CommunicatorError) for e in info.value.failures.values()
        )

    def test_root_mismatch_is_diagnosed(self):
        # The message path would time out on mismatched tags; the gate
        # sees all arguments at once and upgrades this to an immediate
        # CommunicatorError on every rank.
        def prog(comm):
            return comm.bcast(1.0, root=comm.rank % 2)

        with pytest.raises(RankFailedError) as info:
            run_spmd(4, prog, timeout=5.0)
        assert any(
            "root mismatch" in str(e) for e in info.value.failures.values()
        )

    def test_scatter_bad_length_blames_root(self):
        def prog(comm):
            return comm.scatter([1, 2] if comm.rank == 0 else None, root=0)

        with pytest.raises(RankFailedError) as info:
            run_spmd(4, prog)
        assert any(
            isinstance(e, CommunicatorError) and "length-4" in str(e)
            for e in info.value.failures.values()
        )

    def test_mismatched_collectives_are_diagnosed(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.allgather(comm.rank)
            return True

        with pytest.raises(RankFailedError) as info:
            run_spmd(4, prog, timeout=5.0)
        assert any(
            "collective mismatch" in str(e) for e in info.value.failures.values()
        )

    def test_peer_failure_interrupts_parked_ranks(self):
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("boom before the collective")
            comm.barrier()
            return True

        with pytest.raises(RankFailedError) as info:
            run_spmd(4, prog, timeout=5.0)
        assert isinstance(info.value.failures[0], ValueError)


class TestDeadRankMailboxPruning:
    def test_close_drops_pending_and_refuses_deposits(self):
        from repro.simmpi.mailbox import NOTHING, Mailbox

        box = Mailbox(0)
        box.put(1, "ctx", 0, "a")
        box.put(2, "ctx", 1, "b")
        assert box.pending() == 2
        box.close()
        assert box.pending() == 0
        assert box._boxes == {}
        box.put(3, "ctx", 0, "late")
        assert box.pending() == 0
        assert box.try_get(3, "ctx", 0) is NOTHING
        box.close()  # idempotent

    def test_mark_dead_prunes_the_dead_ranks_index(self):
        from repro.simmpi.world import World

        world = World(4)
        world.mailboxes[2].put(0, "ctx", 0, "never drained")
        assert world.mailboxes[2].pending() == 1
        world.mark_dead(2)
        assert world.mailboxes[2].pending() == 0
        assert world.mailboxes[2]._boxes == {}
        # Survivors' boxes are untouched and still accept traffic.
        world.mailboxes[1].put(0, "ctx", 0, "fine")
        assert world.mailboxes[1].pending() == 1
