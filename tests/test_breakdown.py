"""Tests for the energy regime maps."""

import numpy as np
import pytest

from repro.analysis.breakdown import (
    TERMS,
    dominance_boundary,
    dominant_term_map,
    energy_breakdown_fractions,
)
from repro.core.costs import ClassicalMatMulCosts, NBodyCosts
from repro.core.optimize import NBodyOptimizer
from repro.core.optimize_numeric import matmul_optimal_memory
from repro.exceptions import ParameterError
from repro.machines.catalog import JAKETOWN


@pytest.fixture
def mm():
    return ClassicalMatMulCosts()


@pytest.fixture
def jk():
    return JAKETOWN.replace(max_message_words=2.0**20, epsilon_e=1e-2)


class TestFractions:
    def test_sum_to_one(self, mm, jk):
        f = energy_breakdown_fractions(mm, jk, n=1e5, M=1e6)
        assert sum(f.values()) == pytest.approx(1.0)
        assert set(f) == set(TERMS)

    def test_all_nonnegative(self, mm, jk):
        f = energy_breakdown_fractions(mm, jk, n=1e5, M=1e6)
        assert all(v >= 0 for v in f.values())

    def test_small_memory_is_bandwidth_heavy(self, mm, jk):
        tight = energy_breakdown_fractions(mm, jk, n=1e5, M=1e3)
        roomy = energy_breakdown_fractions(mm, jk, n=1e5, M=1e9)
        assert tight["bandwidth"] > roomy["bandwidth"]
        assert roomy["memory"] > tight["memory"]

    def test_invalid(self, mm, jk):
        with pytest.raises(ParameterError):
            energy_breakdown_fractions(mm, jk, 0, 10)


class TestDominantMap:
    def test_shape_and_values(self, mm, jk):
        m = dominant_term_map(mm, jk, [1e4, 1e5], [1e3, 1e6, 1e9])
        assert m.shape == (3, 2)
        assert all(v in TERMS for v in m.ravel())

    def test_memory_regime_at_large_M(self, mm, jk):
        """Huge powered memory makes delta_e M T the top bill; tiny
        memory leaves compute/bandwidth in front. (Jaketown's physical
        memory sits just below its compute/memory crossover — scale
        delta_e up to expose the regime within the installed capacity.)"""
        hot_dram = jk.scale(delta_e=20.0)
        m = dominant_term_map(mm, hot_dram, [1e5], [1e3, 1e10])
        assert m[1, 0] == "memory"
        assert m[0, 0] in ("compute", "bandwidth")

    def test_jaketown_is_compute_dominated_everywhere(self, mm, jk):
        """The flip side of Fig. 6's gamma_e curve being the useful one:
        on the stock machine compute pays the bill at every feasible M."""
        m = dominant_term_map(mm, jk, [1e5, 1e6], [1e3, 1e8, jk.memory_words])
        assert (m == "compute").all()

    def test_invalid_axes(self, mm, jk):
        with pytest.raises(ParameterError):
            dominant_term_map(mm, jk, [0.0], [1e3])


class TestBoundary:
    def test_bandwidth_memory_crossover_matmul(self, mm, jk):
        """The bandwidth->memory boundary brackets the closed-form M*
        (the optimum balances exactly these terms when the constant
        terms don't interfere; allow an order of magnitude)."""
        n = 1e6
        M_star = matmul_optimal_memory(jk)
        boundary = dominance_boundary(mm, jk, n, "bandwidth", "memory")
        assert 0.1 * M_star < boundary < 10 * M_star

    def test_boundary_is_a_crossover(self, mm, jk):
        n = 1e6
        b = dominance_boundary(mm, jk, n, "bandwidth", "memory")
        below = energy_breakdown_fractions(mm, jk, n, b / 2)
        above = energy_breakdown_fractions(mm, jk, n, b * 2)
        assert below["bandwidth"] > below["memory"]
        assert above["memory"] > above["bandwidth"]

    def test_nbody_boundary_matches_M0(self, jk):
        """For n-body the bandwidth/memory balance point IS M0 = sqrt(B/Dm)."""
        f = 20.0
        costs = NBodyCosts(interaction_flops=f)
        opt = NBodyOptimizer(jk, interaction_flops=f)
        n = 1e6
        b = dominance_boundary(costs, jk, n, "bandwidth", "memory")
        # The breakdown's memory term includes leakage-during-transfer
        # cross pieces the closed form folds elsewhere: ~0.2% offset.
        assert b == pytest.approx(opt.optimal_memory(), rel=1e-2)

    def test_no_crossover_raises(self, mm, jk):
        with pytest.raises(ParameterError):
            # compute never yields to latency on this machine (alpha_e=0).
            dominance_boundary(mm, jk, 1e5, "latency", "compute")

    def test_unknown_term(self, mm, jk):
        with pytest.raises(ParameterError):
            dominance_boundary(mm, jk, 1e5, "vibes", "memory")
