"""Tests for the terminal plotting primitives."""

import numpy as np
import pytest

from repro.analysis.asciiplot import (
    line_plot,
    region_plot,
    sparkline,
    stacked_bars,
)
from repro.exceptions import ParameterError


class TestSparkline:
    def test_monotone_series_is_nondecreasing_glyphs(self):
        from repro.analysis.asciiplot import _SPARK_LEVELS

        out = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(out) == 4
        ranks = [_SPARK_LEVELS.index(ch) for ch in out]
        assert ranks == sorted(ranks)
        assert out[0] == _SPARK_LEVELS[0] and out[-1] == _SPARK_LEVELS[-1]

    def test_flat_series_is_flat(self):
        out = sparkline([5.0] * 6)
        assert len(set(out)) == 1

    def test_nan_renders_as_question_mark(self):
        out = sparkline([1.0, float("nan"), 2.0])
        assert out[1] == "?"

    def test_explicit_bounds(self):
        from repro.analysis.asciiplot import _SPARK_LEVELS

        out = sparkline([0.0, 10.0], lo=0.0, hi=20.0)
        assert out[0] == _SPARK_LEVELS[0]
        assert out[1] not in (_SPARK_LEVELS[0], _SPARK_LEVELS[-1])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            sparkline([])


class TestLinePlot:
    def test_basic_render(self):
        x = np.arange(1, 11, dtype=float)
        out = line_plot(x, {"lin": x, "sq": x**2}, width=30, height=10)
        lines = out.splitlines()
        assert any("*" in ln for ln in lines)
        assert any("o" in ln for ln in lines)
        assert "lin" in out and "sq" in out

    def test_title_and_axis_label(self):
        x = np.arange(1, 5, dtype=float)
        out = line_plot(x, {"a": x}, title="T!", x_label="procs")
        assert out.splitlines()[0] == "T!"
        assert "[procs]" in out

    def test_log_axes(self):
        x = np.geomspace(1, 1e6, 20)
        out = line_plot(x, {"flat": np.ones(20)}, logx=True, logy=False)
        assert "*" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            line_plot([0.0, 1.0], {"a": [1.0, 2.0]}, logx=True)

    def test_nan_skipped(self):
        x = np.arange(1, 6, dtype=float)
        y = np.array([1.0, np.nan, 3.0, np.nan, 5.0])
        out = line_plot(x, {"a": y})
        grid_chars = "".join(
            ln.split("|")[1] for ln in out.splitlines() if ln.count("|") == 2
        )
        assert grid_chars.count("*") == 3  # the legend's glyph is outside

    def test_monotone_series_renders_monotone(self):
        """Higher values must land on higher rows."""
        x = np.arange(1, 9, dtype=float)
        out = line_plot(x, {"a": x}, width=24, height=8)
        rows = [ln.split("|")[1] for ln in out.splitlines() if "|" in ln]
        cols = []
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                if ch == "*":
                    cols.append((c, r))
        cols.sort()
        # Row index (top-down) must be non-increasing as x grows.
        assert all(b[1] <= a[1] for a, b in zip(cols, cols[1:]))

    def test_too_small_rejected(self):
        with pytest.raises(ParameterError):
            line_plot([1, 2], {"a": [1, 2]}, width=4, height=2)

    def test_empty_series_rejected(self):
        with pytest.raises(ParameterError):
            line_plot([1, 2], {})

    def test_constant_series_ok(self):
        out = line_plot([1.0, 2.0], {"c": [5.0, 5.0]})
        assert "*" in out


class TestStackedBars:
    def test_segments_share_scale_and_glyphs(self):
        out = stacked_bars(
            {"x": {"a": 3.0, "b": 1.0}, "y": {"a": 1.0, "b": 1.0}},
            width=16,
            unit=" s",
        )
        lines = out.splitlines()
        x_row = next(ln for ln in lines if ln.lstrip().startswith("x"))
        y_row = next(ln for ln in lines if ln.lstrip().startswith("y"))
        # x totals 4 (the scale): 3/4 of 16 cells are 'a', 1/4 are 'b';
        # y totals 2, so its bar is half as long on the shared scale.
        assert x_row.count("*") == 12 and x_row.count("o") == 4
        assert y_row.count("*") == 4 and y_row.count("o") == 4
        assert x_row.endswith(" 4 s") and y_row.endswith(" 2 s")
        assert lines[-1].strip() == "* a  o b"

    def test_title_and_first_appearance_glyph_order(self):
        out = stacked_bars(
            {"r0": {"late": 1.0}, "r1": {"late": 1.0, "early": 2.0}},
            width=12,
            title="T!",
        )
        assert out.splitlines()[0] == "T!"
        # 'late' appears first across rows, so it gets the first glyph.
        assert out.splitlines()[-1].strip() == "* late  o early"

    def test_all_zero_bars_render_empty(self):
        out = stacked_bars({"z": {"a": 0.0}}, width=10)
        row = out.splitlines()[0]
        assert "|" + " " * 10 + "|" in row

    def test_rejects_negative_segment(self):
        with pytest.raises(ParameterError):
            stacked_bars({"x": {"a": -1.0}})

    def test_rejects_empty_rows(self):
        with pytest.raises(ParameterError):
            stacked_bars({})

    def test_rejects_narrow_width(self):
        with pytest.raises(ParameterError):
            stacked_bars({"x": {"a": 1.0}}, width=4)


class TestRegionPlot:
    def test_layers_overdraw(self):
        x = np.arange(1, 11, dtype=float)
        y = np.arange(1, 11, dtype=float)
        base = np.ones((10, 10), dtype=bool)
        top = np.zeros((10, 10), dtype=bool)
        top[5:, :] = True
        out = region_plot(x, y, {"base": base, "top": top}, logx=False, logy=False)
        assert "b" in out and "t" in out

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            region_plot(
                [1.0, 2.0], [1.0, 2.0], {"a": np.ones((3, 3), dtype=bool)}
            )

    def test_legend_and_labels(self):
        x = np.geomspace(1, 100, 5)
        y = np.geomspace(1, 100, 5)
        out = region_plot(
            x, y, {"zone": np.ones((5, 5), dtype=bool)}, x_label="p", y_label="M"
        )
        assert "z = zone" in out
        assert "[p]" in out and "(y = M)" in out

    def test_fig4_integration(self):
        from repro.analysis.figures import figure4_series
        from repro.core.parameters import MachineParameters

        machine = MachineParameters(
            gamma_t=1e-9, beta_t=1e-8, alpha_t=1e-6,
            gamma_e=1e-9, beta_e=1e-8, alpha_e=0.0,
            delta_e=1e-9, epsilon_e=0.0,
            memory_words=1e9, max_message_words=1e6,
        )
        s = figure4_series(machine, n=1e6, interaction_flops=10.0,
                           p_points=16, m_points=16)
        out = region_plot(
            s["p"], s["M"],
            {"feasible": s["grid"].feasible,
             "E": s["energy_budget_region"]},
        )
        assert "f" in out and "E" in out
