"""Tests for the terminal plotting primitives."""

import numpy as np
import pytest

from repro.analysis.asciiplot import (
    _axis_ticks,
    line_plot,
    region_plot,
    sparkline,
    stacked_bars,
    step_plot,
)
from repro.exceptions import ParameterError


class TestSparkline:
    def test_monotone_series_is_nondecreasing_glyphs(self):
        from repro.analysis.asciiplot import _SPARK_LEVELS

        out = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(out) == 4
        ranks = [_SPARK_LEVELS.index(ch) for ch in out]
        assert ranks == sorted(ranks)
        assert out[0] == _SPARK_LEVELS[0] and out[-1] == _SPARK_LEVELS[-1]

    def test_flat_series_is_flat(self):
        out = sparkline([5.0] * 6)
        assert len(set(out)) == 1

    def test_nan_renders_as_question_mark(self):
        out = sparkline([1.0, float("nan"), 2.0])
        assert out[1] == "?"

    def test_explicit_bounds(self):
        from repro.analysis.asciiplot import _SPARK_LEVELS

        out = sparkline([0.0, 10.0], lo=0.0, hi=20.0)
        assert out[0] == _SPARK_LEVELS[0]
        assert out[1] not in (_SPARK_LEVELS[0], _SPARK_LEVELS[-1])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            sparkline([])


class TestLinePlot:
    def test_basic_render(self):
        x = np.arange(1, 11, dtype=float)
        out = line_plot(x, {"lin": x, "sq": x**2}, width=30, height=10)
        lines = out.splitlines()
        assert any("*" in ln for ln in lines)
        assert any("o" in ln for ln in lines)
        assert "lin" in out and "sq" in out

    def test_title_and_axis_label(self):
        x = np.arange(1, 5, dtype=float)
        out = line_plot(x, {"a": x}, title="T!", x_label="procs")
        assert out.splitlines()[0] == "T!"
        assert "[procs]" in out

    def test_log_axes(self):
        x = np.geomspace(1, 1e6, 20)
        out = line_plot(x, {"flat": np.ones(20)}, logx=True, logy=False)
        assert "*" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            line_plot([0.0, 1.0], {"a": [1.0, 2.0]}, logx=True)

    def test_nan_skipped(self):
        x = np.arange(1, 6, dtype=float)
        y = np.array([1.0, np.nan, 3.0, np.nan, 5.0])
        out = line_plot(x, {"a": y})
        grid_chars = "".join(
            ln.split("|")[1] for ln in out.splitlines() if ln.count("|") == 2
        )
        assert grid_chars.count("*") == 3  # the legend's glyph is outside

    def test_monotone_series_renders_monotone(self):
        """Higher values must land on higher rows."""
        x = np.arange(1, 9, dtype=float)
        out = line_plot(x, {"a": x}, width=24, height=8)
        rows = [ln.split("|")[1] for ln in out.splitlines() if "|" in ln]
        cols = []
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                if ch == "*":
                    cols.append((c, r))
        cols.sort()
        # Row index (top-down) must be non-increasing as x grows.
        assert all(b[1] <= a[1] for a, b in zip(cols, cols[1:]))

    def test_too_small_rejected(self):
        with pytest.raises(ParameterError):
            line_plot([1, 2], {"a": [1, 2]}, width=4, height=2)

    def test_empty_series_rejected(self):
        with pytest.raises(ParameterError):
            line_plot([1, 2], {})

    def test_constant_series_ok(self):
        out = line_plot([1.0, 2.0], {"c": [5.0, 5.0]})
        assert "*" in out


class TestStackedBars:
    def test_segments_share_scale_and_glyphs(self):
        out = stacked_bars(
            {"x": {"a": 3.0, "b": 1.0}, "y": {"a": 1.0, "b": 1.0}},
            width=16,
            unit=" s",
        )
        lines = out.splitlines()
        x_row = next(ln for ln in lines if ln.lstrip().startswith("x"))
        y_row = next(ln for ln in lines if ln.lstrip().startswith("y"))
        # x totals 4 (the scale): 3/4 of 16 cells are 'a', 1/4 are 'b';
        # y totals 2, so its bar is half as long on the shared scale.
        assert x_row.count("*") == 12 and x_row.count("o") == 4
        assert y_row.count("*") == 4 and y_row.count("o") == 4
        assert x_row.endswith(" 4 s") and y_row.endswith(" 2 s")
        assert lines[-1].strip() == "* a  o b"

    def test_title_and_first_appearance_glyph_order(self):
        out = stacked_bars(
            {"r0": {"late": 1.0}, "r1": {"late": 1.0, "early": 2.0}},
            width=12,
            title="T!",
        )
        assert out.splitlines()[0] == "T!"
        # 'late' appears first across rows, so it gets the first glyph.
        assert out.splitlines()[-1].strip() == "* late  o early"

    def test_all_zero_bars_render_empty(self):
        out = stacked_bars({"z": {"a": 0.0}}, width=10)
        row = out.splitlines()[0]
        assert "|" + " " * 10 + "|" in row

    def test_rejects_negative_segment(self):
        with pytest.raises(ParameterError):
            stacked_bars({"x": {"a": -1.0}})

    def test_rejects_empty_rows(self):
        with pytest.raises(ParameterError):
            stacked_bars({})

    def test_rejects_narrow_width(self):
        with pytest.raises(ParameterError):
            stacked_bars({"x": {"a": 1.0}}, width=4)


class TestStepPlot:
    def _grid(self, out):
        return [ln.split("|")[1] for ln in out.splitlines() if ln.count("|") == 2]

    def test_basic_step_render_marks_every_column(self):
        out = step_plot([0.0, 1.0, 2.0, 3.0], [1.0, 3.0, 2.0], width=24, height=8)
        grid = self._grid(out)
        assert len(grid) == 8
        # the function is defined on all of [0, 3]: every column is hit
        cols = {c for row in grid for c, ch in enumerate(row) if ch == "*"}
        assert cols == set(range(24))

    def test_columns_mark_the_maximum_level(self):
        # A one-interval-wide spike must stay visible at any width.
        breaks = [0.0, 0.499, 0.501, 1.0]
        out = step_plot(breaks, [1.0, 100.0, 1.0], width=16, height=8)
        grid = self._grid(out)
        assert "*" in grid[0]  # spike reaches the top row
        assert "*" in grid[-1]  # plateau sits on the bottom row

    def test_constant_series(self):
        out = step_plot([0.0, 1.0, 2.0], [5.0, 5.0], width=16, height=8)
        grid = self._grid(out)
        stars = [(r, c) for r, row in enumerate(grid)
                 for c, ch in enumerate(row) if ch == "*"]
        assert stars and len({r for r, _c in stars}) == 1

    def test_zero_width_interval_renders_as_point(self):
        out = step_plot([1.0, 1.0], [5.0], width=16, height=8)
        assert sum(row.count("*") for row in self._grid(out)) == 1

    def test_log_scale_orders_rows(self):
        out = step_plot(
            [0.0, 1.0, 2.0, 3.0], [1.0, 100.0, 10.0], logy=True,
            width=24, height=8,
        )
        grid = self._grid(out)
        rows = sorted(r for r, row in enumerate(grid) if "*" in row)
        assert len(rows) == 3  # three distinct decades, three distinct rows

    def test_title_and_labels(self):
        out = step_plot(
            [0.0, 1.0], [2.0], title="T!", x_label="t [s]", y_label="W"
        )
        assert out.splitlines()[0] == "T!"
        assert "[t [s]]" in out and "(y = W)" in out

    def test_too_small_rejected(self):
        with pytest.raises(ParameterError):
            step_plot([0.0, 1.0], [1.0], width=4)
        with pytest.raises(ParameterError):
            step_plot([0.0, 1.0], [1.0], height=2)

    def test_break_count_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            step_plot([0.0, 1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            step_plot([0.0], [])

    def test_non_finite_rejected(self):
        with pytest.raises(ParameterError):
            step_plot([0.0, float("nan")], [1.0])
        with pytest.raises(ParameterError):
            step_plot([0.0, 1.0], [float("inf")])

    def test_decreasing_breaks_rejected(self):
        with pytest.raises(ParameterError):
            step_plot([0.0, 2.0, 1.0], [1.0, 2.0])


class TestAxisTicks:
    def test_narrow_range_escalates_precision(self):
        # With %.3g every label on [1.0001, 1.0002] collapses to "1";
        # distinct tick values must get distinct labels.
        labels = _axis_ticks(1.0001, 1.0002, log=False, count=4)
        assert len(set(labels)) == 4

    def test_constant_axis_keeps_shared_label(self):
        labels = _axis_ticks(2.5, 2.5, log=False, count=4)
        assert set(labels) == {"2.5"}

    def test_wide_range_stays_terse(self):
        labels = _axis_ticks(0.0, 300.0, log=False, count=4)
        assert labels == ["0", "100", "200", "300"]

    def test_log_ticks_label_the_decades(self):
        labels = _axis_ticks(0.0, 3.0, log=True, count=4)
        assert labels == ["1", "10", "100", "1e+03"]


class TestRegionPlot:
    def test_layers_overdraw(self):
        x = np.arange(1, 11, dtype=float)
        y = np.arange(1, 11, dtype=float)
        base = np.ones((10, 10), dtype=bool)
        top = np.zeros((10, 10), dtype=bool)
        top[5:, :] = True
        out = region_plot(x, y, {"base": base, "top": top}, logx=False, logy=False)
        assert "b" in out and "t" in out

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            region_plot(
                [1.0, 2.0], [1.0, 2.0], {"a": np.ones((3, 3), dtype=bool)}
            )

    def test_legend_and_labels(self):
        x = np.geomspace(1, 100, 5)
        y = np.geomspace(1, 100, 5)
        out = region_plot(
            x, y, {"zone": np.ones((5, 5), dtype=bool)}, x_label="p", y_label="M"
        )
        assert "z = zone" in out
        assert "[p]" in out and "(y = M)" in out

    def test_fig4_integration(self):
        from repro.analysis.figures import figure4_series
        from repro.core.parameters import MachineParameters

        machine = MachineParameters(
            gamma_t=1e-9, beta_t=1e-8, alpha_t=1e-6,
            gamma_e=1e-9, beta_e=1e-8, alpha_e=0.0,
            delta_e=1e-9, epsilon_e=0.0,
            memory_words=1e9, max_message_words=1e6,
        )
        s = figure4_series(machine, n=1e6, interaction_flops=10.0,
                           p_points=16, m_points=16)
        out = region_plot(
            s["p"], s["M"],
            {"feasible": s["grid"].feasible,
             "E": s["energy_budget_region"]},
        )
        assert "f" in out and "E" in out
