"""Tests for Cholesky (sequential + parallel 2D) and the BLAS2 matvec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cholesky import (
    blocked_cholesky,
    cholesky_2d,
    cholesky_flop_count,
)
from repro.exceptions import ParameterError, RankFailedError
from repro.sequential.cache import FastMemory
from repro.sequential.matvec import matvec, matvec_traffic_model
from repro.simmpi.engine import run_spmd


def spd(n, rng):
    x = rng.standard_normal((n, n))
    return x @ x.T + n * np.eye(n)


class TestBlockedCholesky:
    @pytest.mark.parametrize("n,block", [(8, 2), (16, 16), (24, 8), (30, 7)])
    def test_factors(self, n, block, rng):
        a = spd(n, rng)
        lo = blocked_cholesky(a, block=block)
        assert np.allclose(lo @ lo.T, a)
        assert np.allclose(lo, np.tril(lo))

    def test_matches_numpy(self, rng):
        a = spd(20, rng)
        assert np.allclose(blocked_cholesky(a, block=5), np.linalg.cholesky(a))

    def test_flops_order(self, rng):
        n = 32
        flops = []
        blocked_cholesky(spd(n, rng), block=8, flop_counter=flops.append)
        measured = sum(flops)
        assert 0.5 * cholesky_flop_count(n) < measured < 4 * cholesky_flop_count(n)

    def test_half_of_lu_flops(self, rng):
        from repro.algorithms.lu import blocked_lu

        n = 32
        a = spd(n, rng)
        fc, fl = [], []
        blocked_cholesky(a, block=8, flop_counter=fc.append)
        blocked_lu(a, block=8, flop_counter=fl.append)
        assert sum(fc) < 0.75 * sum(fl)

    def test_not_positive_definite(self, rng):
        with pytest.raises(ParameterError):
            blocked_cholesky(-np.eye(8))

    def test_nonsquare_rejected(self):
        with pytest.raises(ParameterError):
            blocked_cholesky(np.zeros((4, 6)))


class TestParallelCholesky:
    @pytest.mark.parametrize("p", [1, 4, 9, 16])
    def test_factors(self, p, rng):
        n = 24
        a = spd(n, rng)
        out = run_spmd(p, cholesky_2d, a)
        q = int(p**0.5)
        lo = np.block([[out.results[i * q + j] for j in range(q)] for i in range(q)])
        assert np.allclose(lo @ lo.T, a)
        assert np.allclose(lo, np.tril(lo))

    def test_matches_serial(self, rng):
        n = 16
        a = spd(n, rng)
        ref = np.linalg.cholesky(a)
        out = run_spmd(4, cholesky_2d, a)
        lo = np.block([[out.results[0], out.results[1]],
                       [out.results[2], out.results[3]]])
        assert np.allclose(lo, ref)

    def test_message_count_grows_with_p(self, rng):
        """Cholesky shares LU's critical path: S grows with p."""
        n = 48
        a = spd(n, rng)
        s4 = run_spmd(4, cholesky_2d, a).report.max_messages
        s16 = run_spmd(16, cholesky_2d, a).report.max_messages
        assert s16 > s4

    def test_words_conserved(self, rng):
        out = run_spmd(9, cholesky_2d, spd(24, rng))
        assert out.report.words_conserved()

    def test_indivisible_rejected(self, rng):
        with pytest.raises(RankFailedError):
            run_spmd(4, cholesky_2d, spd(9, rng))

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=5, deadline=None)
    def test_property_random_spd(self, seed):
        rng = np.random.default_rng(seed)
        a = spd(16, rng)
        out = run_spmd(4, cholesky_2d, a)
        lo = np.block([[out.results[0], out.results[1]],
                       [out.results[2], out.results[3]]])
        assert np.allclose(lo @ lo.T, a)


class TestMatvec:
    def test_correct(self, rng):
        a = rng.standard_normal((12, 20))
        x = rng.standard_normal(20)
        fm = FastMemory(3 * 20 + 12)
        assert np.allclose(matvec(a, x, fm), a @ x)

    def test_traffic_is_compulsory(self, rng):
        n = 64
        a = rng.standard_normal((n, n))
        x = rng.standard_normal(n)
        fm = FastMemory(3 * n)
        matvec(a, x, fm)
        assert fm.stats.words_moved == matvec_traffic_model(n)

    def test_extra_memory_buys_nothing(self, rng):
        """The paper's BLAS2 point: I+O dominates, replication can't help."""
        n = 64
        a = rng.standard_normal((n, n))
        x = rng.standard_normal(n)
        small = FastMemory(3 * n)
        matvec(a, x, small)
        big = FastMemory(100 * n)
        matvec(a, x, big)
        assert small.stats.words_moved == big.stats.words_moved

    def test_io_term_dominates_bound(self, rng):
        """For matvec, Eq. (3)'s max() is won by I+O, not F/sqrt(M)."""
        from repro.core.bounds import sequential_bandwidth_lower_bound

        n = 64
        M = 3 * n
        flops = 2.0 * n * n
        io = matvec_traffic_model(n)
        assert sequential_bandwidth_lower_bound(flops, M, io) == io

    def test_too_small_memory_rejected(self, rng):
        a = rng.standard_normal((8, 8))
        with pytest.raises(ParameterError):
            matvec(a, np.ones(8), FastMemory(10))

    def test_shape_validation(self, rng):
        with pytest.raises(ParameterError):
            matvec(rng.standard_normal((4, 4)), np.ones(5), FastMemory(100))
