"""Tests for the generated experiment report."""

from repro.analysis.report import generate_report
from repro.cli import main


class TestGenerateReport:
    def test_quick_report_sections(self):
        text = generate_report(quick=True)
        for heading in (
            "Fig. 3",
            "Figs. 6-7",
            "Table II",
            "Perfect strong scaling",
            "Where perfect scaling fails",
        ):
            assert heading in text

    def test_contains_headline_numbers(self):
        text = generate_report(quick=True)
        assert "crosses 75 GFLOPS/W at generation 5.56" in text
        assert "matmul25d c=1" in text
        assert "nbody c=1" in text

    def test_cli_report(self, capsys):
        assert main(["report", "--quick"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Reproduction report")
