"""Tests for the classical matmul family: SUMMA, Cannon, 2.5D/3D.

Each algorithm is checked for exact correctness against NumPy on several
grid shapes, for its metered flop count (exactly 2 n^3 total), and for
the communication shape the paper assigns it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cannon import cannon_matmul
from repro.algorithms.matmul25d import grid_for_25d, matmul_25d, matmul_3d
from repro.algorithms.summa import square_grid_side, summa_matmul
from repro.exceptions import ParameterError, RankFailedError
from repro.simmpi.engine import run_spmd


def assemble_2d(results, p):
    q = int(p**0.5)
    return np.block([[results[i * q + j] for j in range(q)] for i in range(q)])


def assemble_25d(results, p, c):
    q = int((p // c) ** 0.5)
    return np.block(
        [[results[(i * q + j) * c] for j in range(q)] for i in range(q)]
    )


class TestGridHelpers:
    def test_square_grid_side(self):
        assert square_grid_side(16) == 4

    def test_square_grid_side_rejects(self):
        with pytest.raises(ParameterError):
            square_grid_side(8)

    def test_grid_for_25d_valid(self):
        assert grid_for_25d(16, 1) == 4
        assert grid_for_25d(8, 2) == 2
        assert grid_for_25d(27, 3) == 3
        assert grid_for_25d(32, 2) == 4

    def test_grid_for_25d_c_doesnt_divide(self):
        with pytest.raises(ParameterError):
            grid_for_25d(15, 2)

    def test_grid_for_25d_not_square(self):
        with pytest.raises(ParameterError):
            grid_for_25d(24, 2)  # 12 not a perfect square

    def test_grid_for_25d_beyond_3d_limit(self):
        with pytest.raises(ParameterError):
            grid_for_25d(4, 4)  # c=4 > p^(1/3)

    def test_grid_for_25d_layer_imbalance(self):
        # p=36, c=3: q=sqrt(12) not integer -> rejected before q%c check
        with pytest.raises(ParameterError):
            grid_for_25d(36, 3)


@pytest.mark.parametrize("algo", [summa_matmul, cannon_matmul])
class Test2DAlgorithms:
    @pytest.mark.parametrize("p", [1, 4, 9, 16])
    def test_correct(self, algo, p, rng):
        n = 24
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        out = run_spmd(p, algo, a, b)
        assert np.allclose(assemble_2d(out.results, p), a @ b)

    def test_flop_count_exact(self, algo, rng):
        n, p = 16, 4
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        out = run_spmd(p, algo, a, b)
        assert out.report.total_flops == pytest.approx(2.0 * n**3)

    def test_nonsquare_p_rejected(self, algo, rng):
        a = rng.standard_normal((8, 8))
        with pytest.raises(RankFailedError):
            run_spmd(8, algo, a, a)

    def test_indivisible_n_rejected(self, algo, rng):
        a = rng.standard_normal((7, 7))
        with pytest.raises(RankFailedError):
            run_spmd(4, algo, a, a)

    def test_mismatched_operands_rejected(self, algo, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((12, 12))
        with pytest.raises(RankFailedError):
            run_spmd(4, algo, a, b)

    def test_words_conserved(self, algo, rng):
        a = rng.standard_normal((12, 12))
        out = run_spmd(4, algo, a, a)
        assert out.report.words_conserved()


class TestCommunicationShape2D:
    def test_cannon_message_count(self, rng):
        """Cannon: per-rank messages = skews + 2(q-1) shift rounds."""
        n, p = 24, 9
        a = rng.standard_normal((n, n))
        out = run_spmd(p, cannon_matmul, a, a)
        q = 3
        # Worst rank: 2 skew sendrecvs + 2 shifts per inner round x (q-1).
        assert out.report.max_messages == 2 + 2 * (q - 1)

    def test_cannon_words_scale_with_tile(self, rng):
        n = 24
        a = rng.standard_normal((n, n))
        w4 = run_spmd(4, cannon_matmul, a, a).report.max_words
        w9 = run_spmd(9, cannon_matmul, a, a).report.max_words
        # W per rank ~ q * (n/q)^2 = n^2/q: decreasing with p.
        assert w9 < w4

    def test_summa_total_words_quadratic_in_grid(self, rng):
        """SUMMA total traffic grows ~ sqrt(p) n^2 — the 2D law."""
        n = 24
        a = rng.standard_normal((n, n))
        t4 = run_spmd(4, summa_matmul, a, a).report.total_words
        t16 = run_spmd(16, summa_matmul, a, a).report.total_words
        # Binomial-tree SUMMA totals 2 n^2 (q-1) words: ratio (4-1)/(2-1) = 3.
        assert t16 / t4 == pytest.approx(3.0)


class Test25D:
    @pytest.mark.parametrize("p,c", [(4, 1), (8, 2), (16, 1), (27, 3), (32, 2)])
    def test_correct(self, p, c, rng):
        n = 24
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        out = run_spmd(p, matmul_25d, a, b, c)
        assert np.allclose(assemble_25d(out.results, p, c), a @ b)

    def test_non_front_layers_return_none(self, rng):
        a = np.eye(4)
        out = run_spmd(8, matmul_25d, a, a, 2)
        for r, res in enumerate(out.results):
            if r % 2 == 0:
                assert res is not None
            else:
                assert res is None

    def test_c1_matches_cannon_traffic(self, rng):
        """At c=1 the 2.5D algorithm degenerates to Cannon (alignment may
        differ by self-shifts, so compare within a small margin)."""
        n = 24
        a = rng.standard_normal((n, n))
        w_cannon = run_spmd(9, cannon_matmul, a, a).report.total_words
        w_25d = run_spmd(9, matmul_25d, a, a, 1).report.total_words
        assert abs(w_25d - w_cannon) <= 0.25 * w_cannon

    def test_flop_count_exact(self, rng):
        n, p, c = 16, 8, 2
        a = rng.standard_normal((n, n))
        out = run_spmd(p, matmul_25d, a, a, c)
        assert out.report.total_flops == pytest.approx(2.0 * n**3)

    def test_replication_reduces_shift_traffic(self, rng):
        """Growing p by c with the tile size fixed must reduce per-rank
        words (the strong-scaling mechanism)."""
        n = 48
        a = rng.standard_normal((n, n))
        w1 = run_spmd(16, matmul_25d, a, a, 1).report.max_words
        w4 = run_spmd(64, matmul_25d, a, a, 4).report.max_words
        assert w4 < w1

    def test_3d_wrapper(self, rng):
        n = 12
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        out = run_spmd(8, matmul_3d, a, b)
        got = assemble_25d(out.results, 8, 2)
        assert np.allclose(got, a @ b)

    def test_3d_needs_cube(self, rng):
        a = np.eye(4)
        with pytest.raises(RankFailedError):
            run_spmd(12, matmul_3d, a, a)

    def test_dtype_promotion(self):
        a = np.eye(8, dtype=np.float32)
        b = (2 * np.eye(8)).astype(np.float64)
        out = run_spmd(4, matmul_25d, a, b, 1)
        got = assemble_25d(out.results, 4, 1)
        assert got.dtype == np.float64
        assert np.allclose(got, 2 * np.eye(8))

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_identity_property(self, seed):
        rng = np.random.default_rng(seed)
        n = 16
        a = rng.standard_normal((n, n))
        out = run_spmd(8, matmul_25d, a, np.eye(n), 2)
        assert np.allclose(assemble_25d(out.results, 8, 2), a)
