"""Tests for nonblocking point-to-point and two-level traffic metering."""

import numpy as np
import pytest

from repro.core.parameters import MachineParameters
from repro.core.twolevel import TwoLevelCounts, twolevel_energy_from_counts
from repro.exceptions import CommunicatorError
from repro.simmpi.engine import run_spmd

MACHINE = MachineParameters(
    gamma_t=1e-9, beta_t=1e-8, alpha_t=1e-6,
    gamma_e=1e-9, beta_e=1e-8, alpha_e=0.0,
    delta_e=1e-9, epsilon_e=0.0,
    memory_words=1e9, max_message_words=1e9,
)


class TestNonblocking:
    def test_isend_completes_immediately(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(4), 1)
                return req.done and req.wait() is None
            return comm.recv(0).sum()

        out = run_spmd(2, prog)
        assert out.results[0] is True
        assert out.results[1] == 6

    def test_irecv_wait(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(3), 1)
                return None
            req = comm.irecv(0)
            return req.wait().sum()

        out = run_spmd(2, prog)
        assert out.results[1] == 3

    def test_irecv_test_polls(self):
        import time

        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.send("late", 1)
                return None
            req = comm.irecv(0)
            before = req.test()  # nothing sent yet
            comm.barrier()
            deadline = time.time() + 10.0
            while not req.test() and time.time() < deadline:
                time.sleep(0.001)
            return (before, req.result())

        out = run_spmd(2, prog)
        assert out.results[1] == (False, "late")

    def test_irecv_metered_on_completion(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(50), 1)
            else:
                comm.irecv(0).wait()

        out = run_spmd(2, prog)
        assert out.report.ranks[1].words_received == 50
        assert out.report.words_conserved()

    def test_irecv_syncs_virtual_clock(self):
        def prog(comm):
            if comm.rank == 0:
                comm.add_flops(1_000_000)  # 1 ms
                comm.send(np.zeros(10), 1)
            else:
                comm.irecv(0).wait()
            return comm.counter.vtime

        out = run_spmd(2, prog, machine=MACHINE)
        assert out.results[1] >= out.results[0]

    def test_result_before_completion_raises(self):
        def prog(comm):
            if comm.rank == 1:
                req = comm.irecv(0)
                try:
                    req.result()
                except CommunicatorError:
                    comm.send("ok", 0)
                    return True
                return False
            return comm.recv(1)

        out = run_spmd(2, prog)
        assert out.results[1] is True

    def test_overlap_pattern(self):
        """Post all receives, compute, then wait — counts identical to
        the blocking version."""

        def nonblocking(comm):
            reqs = [
                comm.irecv((comm.rank - 1) % comm.size, tag=i) for i in range(3)
            ]
            for i in range(3):
                comm.send(np.full(5, float(i)), (comm.rank + 1) % comm.size, tag=i)
            comm.add_flops(100)
            return sum(r.wait().sum() for r in reqs)

        out = run_spmd(4, nonblocking)
        assert all(v == pytest.approx(15.0) for v in out.results)
        assert out.report.words_conserved()


class TestTwoLevelMetering:
    def test_intranode_only(self):
        def prog(comm):
            # ranks 0,1 on node 0; exchange stays on-node
            comm.sendrecv(np.zeros(10), dest=1 - comm.rank, source=1 - comm.rank)

        out = run_spmd(2, prog, node_size=2)
        assert out.report.total_words == 20
        assert out.report.total_words_internode == 0

    def test_internode_flagged(self):
        def prog(comm):
            # ranks 0,1 on different nodes
            comm.sendrecv(np.zeros(10), dest=1 - comm.rank, source=1 - comm.rank)

        out = run_spmd(2, prog, node_size=1)
        assert out.report.total_words_internode == 20

    def test_mixed_traffic_splits(self):
        def prog(comm):
            partner_on_node = comm.rank ^ 1  # same pair (node_size=2)
            partner_off_node = (comm.rank + 2) % comm.size
            comm.sendrecv(np.zeros(7), dest=partner_on_node, source=partner_on_node)
            comm.sendrecv(
                np.zeros(11), dest=partner_off_node, source=partner_off_node,
                sendtag="x", recvtag="x",
            )

        out = run_spmd(4, prog, node_size=2)
        for snap in out.report.ranks:
            assert snap.words_sent == 18
            assert snap.words_sent_internode == 11
            assert snap.words_sent_intranode == 7
            assert snap.words_received_internode == 11

    def test_one_level_world_all_intranode(self):
        def prog(comm):
            comm.shift(np.zeros(5), 1)

        out = run_spmd(4, prog)  # no node_size
        assert out.report.total_words_internode == 0

    def test_node_size_must_divide(self):
        with pytest.raises(ValueError):
            run_spmd(6, lambda comm: None, node_size=4)

    def test_twolevel_counts_feed_energy_model(self):
        """Measured internode/intranode splits flow into Eq.-2-style
        two-level energy directly."""
        from repro.core.parameters import TwoLevelMachineParameters

        def prog(comm):
            comm.add_flops(1000)
            comm.shift(np.zeros(16), 1)  # crosses nodes for node_size=1

        out = run_spmd(4, prog, node_size=1)
        counts = out.report.twolevel_counts(0)
        assert counts.flops == 1000
        assert counts.words_node == 16
        assert counts.words_core == 0
        tl = TwoLevelMachineParameters(
            gamma_t=1e-9, gamma_e=1e-9, epsilon_e=0.0,
            beta_t_node=1e-8, alpha_t_node=0.0,
            beta_e_node=1e-8, alpha_e_node=0.0,
            beta_t_core=1e-9, alpha_t_core=0.0,
            beta_e_core=1e-9, alpha_e_core=0.0,
            delta_e_node=0.0, delta_e_core=0.0,
            memory_node=1e6, memory_core=1e4,
            p_nodes=4, p_cores=1,
        )
        e = twolevel_energy_from_counts(tl, counts)
        assert e == pytest.approx(4 * (1e-9 * 1000 + 1e-8 * 16))

    def test_nbody_teams_on_nodes(self, rng):
        """Replicated n-body with teams mapped to nodes: the team force
        reduction stays intranode, the source ring crosses nodes —
        exactly the Fig. 2 decomposition of Eq. (17)."""
        from repro.algorithms import GRAVITY, nbody_replicated

        n = 48
        pos = rng.standard_normal((n, 3))
        q = np.ones(n)
        out = run_spmd(8, nbody_replicated, pos, q, 2, GRAVITY, node_size=2)
        rep = out.report
        assert 0 < rep.total_words_internode < rep.total_words
        # Ring traffic (positions+charges) dominates the reduction here.
        assert rep.total_words_internode > rep.total_words / 2
