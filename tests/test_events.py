"""Tests for the event-tracing substrate: EventLog rings, hook coverage,
and the zero-overhead-when-disabled contract."""

import numpy as np
import pytest

from repro.simmpi import DEFAULT_TRACE_CAPACITY, EventLog, run_spmd
from repro.simmpi.pool import SpmdPool


class TestEventLog:
    def test_append_returns_monotonic_seqs(self):
        log = EventLog(0, capacity=8)
        assert [log.append("flops", 0.0, 0.0) for _ in range(3)] == [0, 1, 2]
        assert log.recorded == 3
        assert log.dropped == 0
        assert len(log) == 3

    def test_ring_overwrites_oldest(self):
        log = EventLog(0, capacity=4)
        for i in range(10):
            log.append("flops", float(i), float(i))
        assert log.recorded == 10
        assert log.dropped == 6
        assert len(log) == 4
        evs = log.events()
        assert [e.seq for e in evs] == [6, 7, 8, 9]
        assert evs[0].t0 == 6.0  # chronological after wrap

    def test_find(self):
        log = EventLog(0, capacity=4)
        for i in range(6):
            log.append("send", 0.0, 0.0, peer=i)
        assert log.find(5).peer == 5
        assert log.find(2).peer == 2
        assert log.find(1) is None  # dropped
        assert log.find(99) is None  # never recorded
        assert log.find(-1) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(0, capacity=0)

    def test_default_capacity(self):
        assert EventLog(0).capacity == DEFAULT_TRACE_CAPACITY


class TestHookCoverage:
    def test_untraced_run_has_no_logs(self):
        out = run_spmd(2, lambda comm: comm.add_flops(5))
        assert out.event_logs is None
        assert all(r.events_recorded == 0 for r in out.report.ranks)

    def test_p2p_and_flops_events(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(4.0), 1, tag="blk")
            else:
                comm.recv(0, tag="blk")
            comm.add_flops(8.0, label="axpy")

        out = run_spmd(2, prog, trace=True)
        kinds0 = [e.kind for e in out.event_logs[0].events()]
        kinds1 = [e.kind for e in out.event_logs[1].events()]
        assert kinds0 == ["send", "flops"]
        assert kinds1 == ["recv", "flops"]
        send = out.event_logs[0].events()[0]
        recv = out.event_logs[1].events()[0]
        assert send.words == 4 and send.messages == 1 and send.peer == 1
        assert send.tag == "blk"
        assert recv.words == 4 and recv.peer == 0
        assert recv.ref == (0, send.seq)
        flop = out.event_logs[0].events()[1]
        assert flop.flops == 8.0 and flop.tag == "axpy"

    def test_alloc_release_events(self):
        def prog(comm):
            comm.allocate(100)
            comm.release()

        out = run_spmd(1, prog, trace=True)
        evs = out.event_logs[0].events()
        assert [e.kind for e in evs] == ["alloc", "release"]
        assert evs[0].words == 100 and evs[1].words == 100

    def test_collective_span_records_deltas(self):
        def prog(comm):
            comm.allreduce(np.ones(4))

        out = run_spmd(4, prog, trace=True)
        for rank in range(4):
            spans = [
                e for e in out.event_logs[rank].events() if e.kind == "coll"
            ]
            top = [e for e in spans if e.depth == 0]
            assert len(top) == 1 and top[0].tag == "allreduce"
            # allreduce = reduce + bcast: nested spans at depth >= 1
            assert {e.tag for e in spans if e.depth >= 1} <= {"reduce", "bcast"}
            assert any(e.depth >= 1 for e in spans)
        # the root's top-level span carries the traffic the collective sent
        root_span = [
            e
            for e in out.event_logs[0].events()
            if e.kind == "coll" and e.depth == 0
        ][0]
        assert root_span.words > 0 and root_span.messages > 0

    def test_span_words_match_counters(self):
        def prog(comm):
            comm.bcast(np.arange(8.0), root=0)

        out = run_spmd(4, prog, trace=True)
        for rank in range(4):
            top = [
                e
                for e in out.event_logs[rank].events()
                if e.kind == "coll" and e.depth == 0
            ]
            assert len(top) == 1
            assert top[0].words == out.report.ranks[rank].words_sent
            assert top[0].messages == out.report.ranks[rank].messages_sent

    def test_event_tallies_in_snapshot(self):
        out = run_spmd(
            2, lambda comm: comm.add_flops(1), trace=True, trace_capacity=4
        )
        assert all(r.events_recorded == 1 for r in out.report.ranks)
        assert all(r.events_dropped == 0 for r in out.report.ranks)

    def test_ring_overflow_through_engine(self):
        def prog(comm):
            for _ in range(10):
                comm.add_flops(1)

        out = run_spmd(1, prog, trace=True, trace_capacity=4)
        assert out.report.ranks[0].events_recorded == 10
        assert out.report.ranks[0].events_dropped == 6

    def test_label_rendering(self):
        def prog(comm):
            comm.shift(np.ones(2), 1)
            comm.add_flops(1.0, label="gemm")
            comm.bcast(np.ones(2), root=0)

        out = run_spmd(2, prog, trace=True)
        labels = {e.label() for e in out.event_logs[0].events()}
        assert "send->1" in labels
        assert "recv<-1" in labels
        assert "gemm" in labels
        assert "bcast[binomial]" in labels


class TestCountsUnaffected:
    def test_traced_counts_bitidentical(self, machine):
        def prog(comm):
            comm.allocate(16)
            block = comm.shift(np.arange(16.0), 1)
            comm.add_flops(32.0)
            total = comm.allreduce(float(block[0]))
            comm.release()
            return total

        plain = run_spmd(4, prog, machine=machine)
        traced = run_spmd(4, prog, machine=machine, trace=True)
        assert traced.report.counts_signature() == plain.report.counts_signature()
        assert traced.results == plain.results
        assert [r.vtime for r in traced.report.ranks] == [
            r.vtime for r in plain.report.ranks
        ]

    def test_pool_traced_counts_bitidentical(self):
        def prog(comm):
            return comm.allgather(comm.rank)

        with SpmdPool() as pool:
            plain = pool.run(4, prog)
            traced = pool.run(4, prog, trace=True)
        assert traced.report.counts_signature() == plain.report.counts_signature()
        assert traced.event_logs is not None
        assert plain.event_logs is None
