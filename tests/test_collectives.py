"""Tests for collective operations: correctness on every rank and the
advertised word/message costs."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CommunicatorError, RankFailedError
from repro.simmpi.engine import run_spmd


class TestBarrier:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_completes(self, p):
        out = run_spmd(p, lambda comm: comm.barrier())
        assert out.results == (None,) * p

    def test_costs_log_p_zero_word_messages(self):
        out = run_spmd(8, lambda comm: comm.barrier())
        for snap in out.report.ranks:
            assert snap.words_sent == 0
            assert snap.messages_sent == 3  # ceil(log2 8)

    def test_actually_synchronizes(self):
        """No rank may pass the barrier before every rank has reached it."""
        import threading

        arrived = []
        lock = threading.Lock()

        def prog(comm):
            import time

            if comm.rank == 0:
                time.sleep(0.1)
            with lock:
                arrived.append(comm.rank)
            comm.barrier()
            with lock:
                return len(arrived)

        out = run_spmd(4, prog)
        assert all(v == 4 for v in out.results)


class TestBcast:
    @pytest.mark.parametrize("p", [1, 2, 4, 5, 7])
    @pytest.mark.parametrize("root", [0, "last"])
    def test_value_on_all_ranks(self, p, root):
        root_rank = p - 1 if root == "last" else 0

        def prog(comm):
            payload = np.arange(6) if comm.rank == root_rank else None
            return comm.bcast(payload, root=root_rank).sum()

        out = run_spmd(p, prog)
        assert out.results == (15,) * p

    def test_each_rank_receives_once(self):
        out = run_spmd(
            8, lambda comm: comm.bcast(np.zeros(100) if comm.rank == 0 else None)
        )
        for snap in out.report.ranks[1:]:
            assert snap.words_received == 100
            assert snap.messages_received == 1

    def test_root_sends_log_p_copies_binomial(self):
        out = run_spmd(
            8, lambda comm: comm.bcast(np.zeros(100) if comm.rank == 0 else None)
        )
        assert out.report.ranks[0].words_sent == 300  # log2(8) copies

    def test_scatter_allgather_bounds_root_traffic(self):
        def prog(comm):
            payload = np.arange(64.0) if comm.rank == 0 else None
            got = comm.bcast(payload, root=0, algorithm="scatter_allgather")
            return got.sum()

        out = run_spmd(8, prog)
        assert out.results == (sum(range(64)),) * 8
        # Root: scatter (7/8 of payload) + its allgather ring share
        # (~payload) + metadata — far below the 3 payloads binomial costs.
        assert out.report.ranks[0].words_sent < 64 * 2.5

    def test_scatter_allgather_preserves_shape_dtype(self):
        def prog(comm):
            payload = (
                np.arange(12, dtype=np.float32).reshape(3, 4)
                if comm.rank == 0
                else None
            )
            return comm.bcast(payload, root=0, algorithm="scatter_allgather")

        out = run_spmd(4, prog)
        for got in out.results:
            assert got.shape == (3, 4) and got.dtype == np.float32

    def test_scatter_allgather_needs_ndarray(self):
        def prog(comm):
            comm.bcast("nope" if comm.rank == 0 else None,
                       algorithm="scatter_allgather")

        with pytest.raises(RankFailedError):
            run_spmd(4, prog)

    def test_unknown_algorithm(self):
        with pytest.raises(RankFailedError):
            run_spmd(2, lambda comm: comm.bcast(1, algorithm="wat"))

    def test_bad_root(self):
        with pytest.raises(RankFailedError):
            run_spmd(2, lambda comm: comm.bcast(1, root=5))


class TestReduce:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8])
    def test_sum_to_root(self, p):
        def prog(comm):
            return comm.reduce(np.full(3, float(comm.rank + 1)), root=0)

        out = run_spmd(p, prog)
        expected = p * (p + 1) / 2
        assert np.allclose(out.results[0], expected)
        assert all(r is None for r in out.results[1:])

    def test_nonzero_root(self):
        out = run_spmd(5, lambda comm: comm.reduce(comm.rank, root=3))
        assert out.results[3] == 10
        assert out.results[0] is None

    def test_custom_op(self):
        def prog(comm):
            return comm.reduce(comm.rank + 1, op=lambda a, b: a * b, root=0)

        out = run_spmd(4, prog)
        assert out.results[0] == 24

    def test_reduce_scatter_gather_matches_binomial(self):
        def prog(comm):
            data = np.arange(40.0) * (comm.rank + 1)
            a = comm.reduce(data, root=0, algorithm="binomial")
            b = comm.reduce(data, root=0, algorithm="reduce_scatter_gather")
            if comm.rank == 0:
                return np.allclose(a, b)
            return a is None and b is None

        out = run_spmd(4, prog)
        assert all(out.results)

    def test_reduce_scatter_gather_traffic_bounded(self):
        def prog(comm):
            comm.reduce(np.zeros(80), root=0, algorithm="reduce_scatter_gather")

        out = run_spmd(8, prog)
        # Every rank ships ~1x the payload in the ring + one chunk to root:
        # well under binomial's log p factor for interior ranks.
        for snap in out.report.ranks:
            assert snap.words_sent <= 80 + 80 // 8 + 2


class TestAllreduceAllgather:
    @pytest.mark.parametrize("p", [1, 2, 4, 5])
    def test_allreduce_same_everywhere(self, p):
        out = run_spmd(p, lambda comm: comm.allreduce(comm.rank + 1))
        assert out.results == (p * (p + 1) // 2,) * p

    @pytest.mark.parametrize("p", [1, 2, 3, 6])
    def test_allgather_order(self, p):
        out = run_spmd(p, lambda comm: comm.allgather(comm.rank * 2))
        expected = [2 * r for r in range(p)]
        assert all(got == expected for got in out.results)

    def test_allgather_ring_cost(self):
        out = run_spmd(4, lambda comm: comm.allgather(np.zeros(10)))
        for snap in out.report.ranks:
            assert snap.words_sent == 30  # (p-1) blocks forwarded
            assert snap.messages_sent == 3


class TestGatherScatter:
    def test_gather(self):
        out = run_spmd(4, lambda comm: comm.gather(comm.rank**2, root=1))
        assert out.results[1] == [0, 1, 4, 9]
        assert out.results[0] is None

    def test_scatter(self):
        def prog(comm):
            objs = [f"item{r}" for r in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        out = run_spmd(4, prog)
        assert out.results == ("item0", "item1", "item2", "item3")

    def test_scatter_wrong_length(self):
        def prog(comm):
            comm.scatter([1, 2] if comm.rank == 0 else None, root=0)

        with pytest.raises(RankFailedError):
            run_spmd(4, prog)

    def test_gather_scatter_roundtrip(self, rng):
        data = rng.standard_normal(12)

        def prog(comm):
            chunks = np.array_split(data, comm.size) if comm.rank == 0 else None
            mine = comm.scatter(chunks, root=0)
            back = comm.gather(mine, root=0)
            if comm.rank == 0:
                return np.concatenate(back)
            return None

        out = run_spmd(3, prog)
        assert np.allclose(out.results[0], data)


class TestAllToAll:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7])
    def test_cyclic_exchange(self, p):
        def prog(comm):
            blocks = [(comm.rank, d) for d in range(comm.size)]
            got = comm.alltoall(blocks)
            return got

        out = run_spmd(p, prog)
        for r, got in enumerate(out.results):
            assert got == [(s, r) for s in range(p)]

    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_bruck_matches_cyclic(self, p):
        def prog(comm):
            blocks = [np.array([comm.rank * 100 + d]) for d in range(comm.size)]
            a = comm.alltoall(blocks)
            b = comm.alltoall_bruck(blocks)
            return all(np.array_equal(x, y) for x, y in zip(a, b))

        out = run_spmd(p, prog)
        assert all(out.results)

    def test_bruck_requires_power_of_two(self):
        def prog(comm):
            comm.alltoall_bruck([None] * comm.size)

        with pytest.raises(RankFailedError):
            run_spmd(3, prog)

    def test_message_counts_naive_vs_bruck(self):
        def naive(comm):
            comm.alltoall([np.zeros(4) for _ in range(comm.size)])

        def bruck(comm):
            comm.alltoall_bruck([np.zeros(4) for _ in range(comm.size)])

        p = 8
        out_n = run_spmd(p, naive)
        out_b = run_spmd(p, bruck)
        assert out_n.report.max_messages == p - 1
        assert out_b.report.max_messages == math.log2(p)
        # Bruck ships more words (each travels up to log p hops).
        assert out_b.report.max_words > out_n.report.max_words

    def test_wrong_block_count(self):
        with pytest.raises(RankFailedError):
            run_spmd(4, lambda comm: comm.alltoall([1, 2]))


class TestConservationProperty:
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_words_conserved_across_collectives(self, p, seed):
        """Whatever mix of collectives runs, total sent == total received."""

        def prog(comm):
            data = np.full(4 + seed, float(comm.rank))
            comm.bcast(data if comm.rank == 0 else None)
            comm.allreduce(data)
            comm.allgather(comm.rank)
            comm.barrier()
            if comm.size >= 2:
                comm.alltoall([np.zeros(2) for _ in range(comm.size)])

        out = run_spmd(p, prog)
        assert out.report.words_conserved()
