"""Tests for the Eq. (1) runtime and Eq. (2) energy evaluators, and the
paper's closed forms — including the headline p-independence claims."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import (
    ClassicalMatMulCosts,
    NBodyCosts,
    StrassenMatMulCosts,
)
from repro.core.energy import (
    energy,
    energy_fft,
    energy_from_counts,
    energy_matmul_25d,
    energy_matmul_3d,
    energy_nbody,
    energy_strassen_flm,
    energy_strassen_fum,
)
from repro.core.timing import runtime, runtime_from_counts
from repro.exceptions import MemoryRangeError, ParameterError

from conftest import machine_strategy


class TestRuntime:
    def test_from_counts(self, machine):
        t = runtime_from_counts(machine, F=1e9, W=1e6, S=1e3)
        assert t.compute == pytest.approx(machine.gamma_t * 1e9)
        assert t.bandwidth == pytest.approx(machine.beta_t * 1e6)
        assert t.latency == pytest.approx(machine.alpha_t * 1e3)
        assert t.total == pytest.approx(t.compute + t.bandwidth + t.latency)

    def test_negative_counts_rejected(self, machine):
        with pytest.raises(ParameterError):
            runtime_from_counts(machine, F=-1, W=0, S=0)

    def test_dominant_term(self, machine):
        t = runtime_from_counts(machine, F=1e15, W=0, S=0)
        assert t.dominant_term() == "compute"
        t = runtime_from_counts(machine, F=0, W=1e15, S=0)
        assert t.dominant_term() == "bandwidth"

    def test_runtime_from_costs(self, machine):
        costs = ClassicalMatMulCosts()
        n, p = 1000.0, 64.0
        M = costs.memory_min(n, p)
        t = runtime(costs, machine, n, p, M)
        assert t.compute == pytest.approx(machine.gamma_t * n**3 / p)

    def test_memory_default_clamped(self, machine):
        # With no M given, uses machine memory clamped into range.
        costs = ClassicalMatMulCosts()
        t = runtime(costs, machine, 1000.0, 64.0)
        assert t.total > 0

    def test_memory_validation(self, machine):
        costs = ClassicalMatMulCosts()
        with pytest.raises(MemoryRangeError):
            runtime(costs, machine, 1000.0, 64.0, M=1.0)

    def test_memory_validation_skippable(self, machine):
        costs = ClassicalMatMulCosts()
        t = runtime(costs, machine, 1000.0, 64.0, M=1.0, check_memory=False)
        assert t.total > 0

    def test_exceeding_physical_memory_rejected(self, machine):
        costs = ClassicalMatMulCosts()
        with pytest.raises(ParameterError):
            runtime(costs, machine, 1e6, 4.0, M=machine.memory_words * 10)


class TestEnergyGeneric:
    def test_from_counts_terms(self, machine):
        e = energy_from_counts(machine, F=1e9, W=1e6, S=1e3, M=1e6, p=8)
        T = runtime_from_counts(machine, 1e9, 1e6, 1e3).total
        assert e.compute == pytest.approx(8 * machine.gamma_e * 1e9)
        assert e.bandwidth == pytest.approx(8 * machine.beta_e * 1e6)
        assert e.latency == pytest.approx(8 * machine.alpha_e * 1e3)
        assert e.memory == pytest.approx(8 * machine.delta_e * 1e6 * T)
        assert e.leakage == pytest.approx(8 * machine.epsilon_e * T)

    def test_explicit_runtime_used(self, machine):
        e1 = energy_from_counts(machine, 1e9, 1e6, 1e3, M=1e6, p=8, T=1.0)
        e2 = energy_from_counts(machine, 1e9, 1e6, 1e3, M=1e6, p=8, T=2.0)
        assert e2.memory == pytest.approx(2 * e1.memory)
        assert e2.compute == e1.compute

    def test_invalid_p(self, machine):
        with pytest.raises(ParameterError):
            energy_from_counts(machine, 1, 1, 1, M=1, p=0)

    def test_dominant_term(self, machine):
        e = energy_from_counts(machine, F=1e18, W=0, S=0, M=0, p=1)
        assert e.dominant_term() == "compute"


class TestClosedFormsMatchGeneric:
    """Every transcribed closed form must equal the Eq.-2 evaluator
    applied to the corresponding cost expressions."""

    @given(machine_strategy(), st.floats(min_value=100, max_value=1e5),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=50)
    def test_matmul_25d(self, m, n, c_factor):
        costs = ClassicalMatMulCosts()
        M = min(m.memory_words, n**2)  # one-copy-on-one-proc ceiling
        p = costs.p_min(n, M) * c_factor
        if p > costs.p_max_perfect(n, M):
            p = costs.p_max_perfect(n, M)
        generic = energy(costs, m, n, p, M).total
        closed = energy_matmul_25d(m, n, M)
        assert closed == pytest.approx(generic, rel=1e-9)

    @given(machine_strategy(), st.floats(min_value=100, max_value=1e5))
    @settings(max_examples=50)
    def test_matmul_3d(self, m, n):
        costs = ClassicalMatMulCosts()
        p = 64.0
        M = costs.memory_max(n, p)
        if M > m.memory_words:
            M = m.memory_words
            p = costs.p_max_perfect(n, M)
        generic = energy(costs, m, n, p, M).total
        closed = energy_matmul_3d(m, n, p)
        assert closed == pytest.approx(generic, rel=1e-9)

    @given(machine_strategy(), st.floats(min_value=100, max_value=1e5),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=50)
    def test_strassen_flm(self, m, n, c_factor):
        costs = StrassenMatMulCosts()
        M = min(m.memory_words, n**2)
        p = costs.p_min(n, M) * c_factor
        if p > costs.p_max_perfect(n, M):
            p = costs.p_max_perfect(n, M)
        generic = energy(costs, m, n, p, M).total
        closed = energy_strassen_flm(m, n, M)
        assert closed == pytest.approx(generic, rel=1e-9)

    @given(machine_strategy(), st.floats(min_value=100, max_value=1e4))
    @settings(max_examples=50)
    def test_strassen_fum_is_flm_at_ceiling(self, m, n):
        # Eq. (14) == Eq. (13) at M = n^2/p^(2/omega0) — with the
        # corrected n^(omega0+2) memory term.
        omega0 = math.log2(7)
        p = 49.0
        M = n**2 / p ** (2 / omega0)
        assert energy_strassen_fum(m, n, p) == pytest.approx(
            energy_strassen_flm(m, n, M), rel=1e-9
        )

    @given(machine_strategy(), st.floats(min_value=100, max_value=1e6),
           st.integers(min_value=1, max_value=10),
           st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=50)
    def test_nbody(self, m, n, c_factor, f):
        costs = NBodyCosts(interaction_flops=f)
        M = min(m.memory_words, n)
        p = costs.p_min(n, M) * c_factor
        if p > costs.p_max_perfect(n, M):
            p = costs.p_max_perfect(n, M)
        generic = energy(costs, m, n, p, M).total
        closed = energy_nbody(m, n, M, interaction_flops=f)
        assert closed == pytest.approx(generic, rel=1e-9)


class TestPerfectScalingEnergyIndependence:
    """The headline theorem: E does not change with p inside the range."""

    @given(machine_strategy(), st.floats(min_value=1000, max_value=1e5))
    @settings(max_examples=50)
    def test_matmul_energy_constant_in_p(self, m, n):
        costs = ClassicalMatMulCosts()
        M = min(m.memory_words, n**2 / 4)
        p_lo = costs.p_min(n, M)
        p_hi = costs.p_max_perfect(n, M)
        e_lo = energy(costs, m, n, p_lo, M).total
        e_mid = energy(costs, m, n, math.sqrt(p_lo * p_hi), M).total
        e_hi = energy(costs, m, n, p_hi, M).total
        assert e_lo == pytest.approx(e_mid, rel=1e-9)
        assert e_lo == pytest.approx(e_hi, rel=1e-9)

    @given(machine_strategy(), st.floats(min_value=1000, max_value=1e6))
    @settings(max_examples=50)
    def test_nbody_energy_constant_in_p(self, m, n):
        costs = NBodyCosts(interaction_flops=5.0)
        M = min(m.memory_words, n / 2)
        p_lo = costs.p_min(n, M)
        p_hi = costs.p_max_perfect(n, M)
        e_lo = energy(costs, m, n, p_lo, M).total
        e_hi = energy(costs, m, n, p_hi, M).total
        assert e_lo == pytest.approx(e_hi, rel=1e-9)

    @given(machine_strategy(), st.floats(min_value=1000, max_value=1e5))
    @settings(max_examples=50)
    def test_time_scales_as_inverse_p(self, m, n):
        costs = ClassicalMatMulCosts()
        M = min(m.memory_words, n**2 / 4)
        p = costs.p_min(n, M)
        if 4 * p > costs.p_max_perfect(n, M):
            return  # range too narrow at this M
        t1 = runtime(costs, m, n, p, M).total
        t4 = runtime(costs, m, n, 4 * p, M).total
        assert t4 == pytest.approx(t1 / 4, rel=1e-9)

    def test_3d_energy_depends_on_p(self, machine):
        # Outside the range (at the 3D limit) energy is NOT constant.
        n = 1e4
        e1 = energy_matmul_3d(machine, n, 64.0)
        e2 = energy_matmul_3d(machine, n, 512.0)
        assert e1 != pytest.approx(e2, rel=1e-6)


class TestFFTEnergy:
    def test_positive(self, machine):
        assert energy_fft(machine, 2**20, 64.0) > 0

    def test_matches_terms(self, machine):
        n, p = 2.0**16, 16.0
        g = machine
        logn, logp = 16.0, 4.0
        expected = (
            (g.gamma_e + g.epsilon_e * g.gamma_t) * n * logn
            + (g.alpha_e + g.epsilon_e * g.alpha_t) * p * logp
            + (g.beta_e + g.epsilon_e * g.beta_t + g.delta_e * g.alpha_t) * n * logp
            + g.delta_e * g.gamma_t * n**2 * logn / p
            + g.delta_e * g.beta_t * n**2 * logp / p
        )
        assert energy_fft(g, n, p) == pytest.approx(expected, rel=1e-12)

    def test_energy_grows_with_p_eventually(self, machine):
        # p log p term: no perfect scaling.
        n = 2.0**16
        e_small = energy_fft(machine, n, 4.0)
        e_huge = energy_fft(machine, n, 2.0**40)
        assert e_huge > e_small

    def test_invalid(self, machine):
        with pytest.raises(ParameterError):
            energy_fft(machine, 1.0, 4.0)
