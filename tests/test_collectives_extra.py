"""Tests for the additional collective algorithms: recursive-doubling
allreduce and ring reduce-scatter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RankFailedError
from repro.simmpi.engine import run_spmd


class TestRecursiveDoublingAllreduce:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8])
    def test_matches_reduce_bcast(self, p):
        def prog(comm):
            data = np.arange(6.0) * (comm.rank + 1)
            a = comm.allreduce(data, algorithm="reduce_bcast")
            b = comm.allreduce(data, algorithm="recursive_doubling")
            return np.allclose(a, b)

        assert all(run_spmd(p, prog).results)

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_value_correct_power_of_two(self, p):
        out = run_spmd(
            p,
            lambda comm: comm.allreduce(
                comm.rank + 1.0, algorithm="recursive_doubling"
            ),
        )
        assert out.results == (p * (p + 1) / 2,) * p

    def test_non_power_of_two_folds(self):
        p = 6
        out = run_spmd(
            p,
            lambda comm: comm.allreduce(
                float(comm.rank), algorithm="recursive_doubling"
            ),
        )
        assert out.results == (15.0,) * p

    def test_round_count_power_of_two(self):
        """Recursive doubling: log2 p rounds of pairwise sendrecv."""
        p = 8

        def prog(comm):
            comm.allreduce(np.zeros(16), algorithm="recursive_doubling")

        out = run_spmd(p, prog)
        for snap in out.report.ranks:
            assert snap.messages_sent == 3  # log2(8)

    def test_balanced_traffic_vs_reduce_bcast(self):
        """Recursive doubling spreads traffic evenly; reduce+bcast loads
        the root."""
        p = 8

        def rd(comm):
            comm.allreduce(np.zeros(64), algorithm="recursive_doubling")

        def rb(comm):
            comm.allreduce(np.zeros(64), algorithm="reduce_bcast")

        out_rd = run_spmd(p, rd).report
        out_rb = run_spmd(p, rb).report

        def spread(rep):
            sent = [s.words_sent for s in rep.ranks]
            return max(sent) - min(sent)

        assert spread(out_rd) == 0  # perfectly symmetric
        assert spread(out_rb) > 0  # root/leaf asymmetry

    def test_unknown_algorithm(self):
        with pytest.raises(RankFailedError):
            run_spmd(2, lambda comm: comm.allreduce(1, algorithm="psychic"))

    @given(st.integers(min_value=1, max_value=9), st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_property_random(self, p, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((p, 5))

        def prog(comm):
            return comm.allreduce(
                data[comm.rank].copy(), algorithm="recursive_doubling"
            )

        out = run_spmd(p, prog)
        for got in out.results:
            assert np.allclose(got, data.sum(axis=0))


class TestReduceScatter:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6])
    def test_chunks_partition_the_reduction(self, p):
        size = 12

        def prog(comm):
            data = np.arange(float(size)) * (comm.rank + 1)
            return comm.reduce_scatter(data)

        out = run_spmd(p, prog)
        full = np.arange(float(size)) * sum(range(1, p + 1))
        got = np.concatenate(out.results)
        assert np.allclose(got, full)

    def test_chunk_ownership_order(self):
        p, size = 4, 8

        def prog(comm):
            return comm.reduce_scatter(np.arange(float(size)))

        out = run_spmd(p, prog)
        expected_chunks = np.array_split(np.arange(float(size)) * p, p)
        for r in range(p):
            assert np.allclose(out.results[r], expected_chunks[r])

    def test_needs_ndarray(self):
        with pytest.raises(RankFailedError):
            run_spmd(2, lambda comm: comm.reduce_scatter([1, 2]))

    def test_traffic_is_about_one_payload(self):
        p, size = 8, 80

        def prog(comm):
            comm.reduce_scatter(np.zeros(size))

        out = run_spmd(p, prog)
        for snap in out.report.ranks:
            # (p-1) chunks + the rotation chunk ~ size words.
            assert snap.words_sent <= size + size // p + 2
