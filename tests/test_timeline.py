"""Tests for Timeline/CriticalPath: critical-path exactness, breakdowns,
the Gantt renderer and the Chrome/Perfetto exporter."""

import json

import numpy as np
import pytest

from repro.algorithms.matmul25d import matmul_25d
from repro.analysis.timeline import CriticalPath
from repro.exceptions import ParameterError
from repro.simmpi import run_spmd


def two_rank_stall(comm):
    """Rank 0 computes then sends; rank 1 stalls on the recv, then
    computes. The critical path must cross from rank 1 back to rank 0."""
    if comm.rank == 0:
        comm.add_flops(1000.0, label="head")
        comm.send(np.arange(8.0), 1)
    else:
        comm.recv(0)
        comm.add_flops(500.0, label="tail")


def matmul_prog(comm, n, c):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    return matmul_25d(comm, a, b, c=c)


@pytest.fixture
def traced_matmul(machine):
    return run_spmd(8, matmul_prog, 16, 2, machine=machine, trace=True)


class TestTimeline:
    def test_requires_traced_run(self):
        out = run_spmd(2, lambda comm: comm.add_flops(1))
        with pytest.raises(ParameterError):
            out.timeline()

    def test_from_result(self, traced_matmul):
        tl = traced_matmul.timeline()
        assert tl.size == 8
        assert tl.dropped == 0
        assert all(tl.events(r) for r in range(8))

    def test_find_resolves_refs(self, traced_matmul):
        tl = traced_matmul.timeline()
        resolved = 0
        for rank in range(8):
            for ev in tl.events(rank):
                if ev.kind == "recv" and ev.ref is not None:
                    sent = tl.find(*ev.ref)
                    assert sent is not None
                    assert sent.kind == "send"
                    assert sent.peer == rank  # send targeted this rank
                    assert sent.words == ev.words
                    resolved += 1
        assert resolved > 0

    def test_breakdown_depth0_only(self, traced_matmul):
        tl = traced_matmul.timeline()
        b = tl.breakdown()
        assert "bcast" in b and "reduce" in b and "compute" in b
        # top-level spans only: the sends inside bcast/reduce must not
        # appear again as p2p categories beyond Cannon's own shifts
        assert b["compute"]["flops"] == pytest.approx(
            traced_matmul.report.total_flops
        )
        assert b["bcast"]["words"] > 0

    def test_render_breakdown(self, traced_matmul):
        text = traced_matmul.timeline().render_breakdown()
        assert "category" in text and "bcast" in text

    def test_gantt(self, traced_matmul):
        chart = traced_matmul.timeline().gantt(width=40)
        lines = chart.splitlines()
        assert any("rank 0" in ln for ln in lines)
        assert any("rank 7" in ln for ln in lines)
        assert "virtual time" in chart
        assert "=" in chart and "#" in chart

    def test_gantt_requires_machine(self):
        out = run_spmd(2, lambda comm: comm.add_flops(1), trace=True)
        with pytest.raises(ParameterError):
            out.timeline().gantt()


class TestCriticalPath:
    def test_bit_exact_on_25d_matmul(self, traced_matmul):
        cp = traced_matmul.timeline().critical_path()
        # exact equality, not approx: the chain replays the very float
        # additions that produced the finishing rank's clock
        assert cp.total == traced_matmul.report.simulated_time
        assert len(cp) > 0

    def test_bit_exact_across_workloads(self, machine):
        def ring(comm):
            block = np.arange(32.0)
            for step in range(3):
                block = comm.shift(block, 1, tag=step)
                comm.add_flops(64.0)

        for prog in (ring, two_rank_stall):
            out = run_spmd(4 if prog is ring else 2, prog,
                           machine=machine, trace=True)
            cp = out.timeline().critical_path()
            assert cp.total == out.report.simulated_time

    def test_chain_is_chronological_tiling(self, traced_matmul):
        cp = traced_matmul.timeline().critical_path()
        t = 0.0
        for step in cp.steps:
            assert step.event.t0 <= t + 1e-18 or step.seconds == 0.0
            t = max(t, step.event.t1)
        assert t == traced_matmul.report.simulated_time

    def test_stall_jumps_to_sender(self, machine):
        out = run_spmd(2, two_rank_stall, machine=machine, trace=True)
        cp = out.timeline().critical_path()
        chain_ranks = [s.rank for s in cp.steps]
        # path starts on rank 0 (the head compute + send), ends on rank 1
        assert chain_ranks[0] == 0
        assert chain_ranks[-1] == 1
        attr = cp.attribution()
        assert attr["head"] == pytest.approx(machine.gamma_t * 1000.0)
        assert attr["tail"] == pytest.approx(machine.gamma_t * 500.0)
        assert attr["recv"] == 0.0  # stalls carry no cost of their own

    def test_attribution_sums_to_total(self, traced_matmul):
        cp = traced_matmul.timeline().critical_path()
        assert sum(cp.attribution().values()) == pytest.approx(cp.total, rel=1e-12)

    def test_render(self, traced_matmul):
        text = traced_matmul.timeline().critical_path().render()
        assert "critical path" in text
        assert "chain:" in text

    def test_requires_machine(self):
        out = run_spmd(2, lambda comm: comm.add_flops(1), trace=True)
        with pytest.raises(ParameterError):
            out.timeline().critical_path()

    def test_rejects_dropped_history(self, machine):
        def chatty(comm):
            for _ in range(16):
                comm.add_flops(4.0)

        out = run_spmd(1, chatty, machine=machine, trace=True, trace_capacity=4)
        with pytest.raises(ParameterError, match="trace_capacity"):
            out.timeline().critical_path()

    def test_from_timeline_classmethod(self, traced_matmul):
        tl = traced_matmul.timeline()
        assert CriticalPath.from_timeline(tl).total == tl.report.simulated_time


class TestUtilization:
    def test_two_rank_stall_known_fractions(self, machine):
        out = run_spmd(2, two_rank_stall, machine=machine, trace=True)
        util = out.timeline().utilization()
        horizon = out.report.simulated_time
        # rank 0 never waits: head compute + the send, then idle until
        # rank 1 (the finishing rank, which is never idle) catches up
        send_cost = machine.beta_t * 8.0 + machine.alpha_t
        assert util[0]["stall"] == 0.0
        assert util[0]["busy"] * horizon == pytest.approx(
            machine.gamma_t * 1000.0 + send_cost, rel=1e-12
        )
        assert util[1]["busy"] * horizon == pytest.approx(
            machine.gamma_t * 500.0, rel=1e-12
        )
        assert util[1]["stall"] > 0.0
        assert util[1]["idle"] == pytest.approx(0.0, abs=1e-12)

    def test_fractions_sum_to_one(self, traced_matmul):
        util = traced_matmul.timeline().utilization()
        assert set(util) == set(range(8))
        for frac in util.values():
            assert frac["busy"] + frac["stall"] + frac["idle"] == (
                pytest.approx(1.0, rel=1e-9)
            )
            assert all(v >= 0.0 for v in frac.values())

    def test_requires_machine(self):
        out = run_spmd(2, lambda comm: comm.add_flops(1), trace=True)
        with pytest.raises(ParameterError, match="machine"):
            out.timeline().utilization()


class TestChromeTrace:
    def test_structure(self, traced_matmul):
        tl = traced_matmul.timeline()
        doc = tl.to_chrome_trace()
        events = doc["traceEvents"]
        # one named track per rank
        meta = [e for e in events if e["ph"] == "M"]
        assert sorted(e["tid"] for e in meta) == list(range(8))
        assert all(e["name"] == "thread_name" for e in meta)
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for e in complete:
            assert e["pid"] == 0
            assert 0 <= e["tid"] < 8
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
            assert e["name"]

    def test_microsecond_scale(self, traced_matmul):
        tl = traced_matmul.timeline()
        doc = tl.to_chrome_trace()
        max_end = max(
            e["ts"] + e["dur"]
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        )
        assert max_end == pytest.approx(
            traced_matmul.report.simulated_time * 1e6
        )

    def test_flow_events_pair_up(self, traced_matmul):
        events = traced_matmul.timeline().to_chrome_trace()["traceEvents"]
        starts = {e["id"] for e in events if e["ph"] == "s"}
        ends = {e["id"] for e in events if e["ph"] == "f"}
        assert starts and starts == ends
        assert all(
            e["ph"] != "f" or e.get("bp") == "e" for e in events
        )

    def test_flows_can_be_disabled(self, traced_matmul):
        events = traced_matmul.timeline().to_chrome_trace(flows=False)[
            "traceEvents"
        ]
        assert not [e for e in events if e["ph"] in ("s", "f")]

    def test_power_counters_merge_without_touching_tracks(
        self, traced_matmul, machine
    ):
        from repro.analysis.powertrace import PowerTrace

        tl = traced_matmul.timeline()
        pt = PowerTrace.from_result(traced_matmul, machine)
        doc = tl.to_chrome_trace(power=pt)
        events = doc["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        assert {e["name"] for e in counters} >= {
            "machine power [W]",
            "rank 0 power [W]",
        }
        # the counter tracks ride along without disturbing the spans:
        # same thread metadata, same X events, nothing else new
        meta = [e for e in events if e["ph"] == "M"]
        assert sorted(e["tid"] for e in meta) == list(range(8))
        plain = tl.to_chrome_trace()["traceEvents"]
        assert len(events) == len(plain) + len(counters)
        assert not [e for e in plain if e["ph"] == "C"]

    def test_json_round_trip_and_save(self, traced_matmul, tmp_path):
        tl = traced_matmul.timeline()
        path = tmp_path / "trace.json"
        tl.save_chrome_trace(path)
        data = json.loads(path.read_text())
        assert data["traceEvents"] == json.loads(
            json.dumps(tl.to_chrome_trace())
        )["traceEvents"]
