"""Tests for the SPMD engine, mailboxes, point-to-point messaging and
failure handling."""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import (
    CommunicatorError,
    DeadlockError,
    RankFailedError,
)
from repro.simmpi.engine import run_spmd
from repro.simmpi.mailbox import ANY_TAG, Mailbox


class TestRunSpmd:
    def test_results_ordered_by_rank(self):
        out = run_spmd(5, lambda comm: comm.rank * 10)
        assert out.results == (0, 10, 20, 30, 40)

    def test_single_rank(self):
        out = run_spmd(1, lambda comm: comm.size)
        assert out.results == (1,)

    def test_args_kwargs_forwarded(self):
        def prog(comm, a, b=0):
            return a + b + comm.rank

        out = run_spmd(3, prog, 100, b=10)
        assert out.results == (110, 111, 112)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)

    def test_indexing_and_iteration(self):
        out = run_spmd(3, lambda comm: comm.rank)
        assert out[1] == 1
        assert list(out) == [0, 1, 2]

    def test_report_attached(self):
        out = run_spmd(2, lambda comm: comm.add_flops(5))
        assert out.report.total_flops == 10


class TestPointToPoint:
    def test_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(4), 1, tag="data")
                return None
            return comm.recv(0, tag="data").sum()

        out = run_spmd(2, prog)
        assert out.results[1] == 6

    def test_message_isolation_by_tag(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", 1, tag="a")
                comm.send("second", 1, tag="b")
                return None
            # Receive in reverse tag order: matching is per-channel.
            second = comm.recv(0, tag="b")
            first = comm.recv(0, tag="a")
            return (first, second)

        out = run_spmd(2, prog)
        assert out.results[1] == ("first", "second")

    def test_fifo_per_channel(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, 1)
                return None
            return [comm.recv(0) for _ in range(10)]

        out = run_spmd(2, prog)
        assert out.results[1] == list(range(10))

    def test_receiver_gets_a_copy(self):
        """Distributed-memory semantics: mutating a received buffer must
        not corrupt the sender's array. Under copy-on-write transport the
        receiver materializes a private copy before writing."""
        from repro.simmpi import materialize

        src = np.arange(4)

        def prog(comm):
            if comm.rank == 0:
                comm.send(src, 1)
                comm.barrier()
                return src.copy()
            buf = materialize(comm.recv(0))
            buf[:] = -1
            comm.barrier()
            return buf

        out = run_spmd(2, prog)
        assert np.array_equal(out.results[0], [0, 1, 2, 3])
        assert np.array_equal(out.results[1], [-1, -1, -1, -1])

    def test_received_buffer_is_read_only_under_cow(self):
        """CoW receives deliver read-only views: writing without
        materialize() raises instead of silently aliasing."""

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(4), 1)
                return None
            buf = comm.recv(0)
            assert not buf.flags.writeable
            with pytest.raises(ValueError):
                buf[:] = -1
            return buf.sum()

        out = run_spmd(2, prog)
        assert out.results[1] == 6

    def test_legacy_copy_mode_delivers_writable_buffers(self):
        """payload_mode="copy" keeps the seed's deep-copy semantics."""
        src = np.arange(4)

        def prog(comm):
            if comm.rank == 0:
                comm.send(src, 1)
                comm.barrier()
                return src.copy()
            buf = comm.recv(0)
            assert buf.flags.writeable
            buf[:] = -1
            comm.barrier()
            return buf

        out = run_spmd(2, prog, payload_mode="copy")
        assert np.array_equal(out.results[0], [0, 1, 2, 3])
        assert np.array_equal(out.results[1], [-1, -1, -1, -1])

    def test_counts_sent_and_received(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(250), 1)
            elif comm.rank == 1:
                comm.recv(0)

        out = run_spmd(2, prog, max_message_words=100)
        snap = out.report.ranks
        assert snap[0].words_sent == 250
        assert snap[0].messages_sent == 3  # ceil(250/100)
        assert snap[1].words_received == 250
        assert snap[1].messages_received == 3
        assert out.report.words_conserved()

    def test_self_sendrecv_unmetered(self):
        def prog(comm):
            got = comm.sendrecv(np.arange(3), dest=comm.rank, source=comm.rank)
            return got.sum()

        out = run_spmd(2, prog)
        assert out.results == (3, 3)
        assert out.report.total_words == 0

    def test_shift_ring(self):
        def prog(comm):
            got = comm.shift(comm.rank, 1)
            return got

        out = run_spmd(4, prog)
        assert out.results == (3, 0, 1, 2)

    def test_any_tag_recv(self):
        """Comm.recv accepts the ANY_TAG wildcard (arrival order)."""
        from repro.simmpi.mailbox import ANY_TAG

        def prog(comm):
            if comm.rank == 0:
                comm.send("first", 1, tag="zebra")
                comm.send("second", 1, tag="aardvark")
                return None
            return (comm.recv(0, tag=ANY_TAG), comm.recv(0, tag=ANY_TAG))

        out = run_spmd(2, prog)
        assert out.results[1] == ("first", "second")

    def test_bad_peer_rejected(self):
        def prog(comm):
            comm.send(1, 99)

        with pytest.raises(RankFailedError) as exc:
            run_spmd(2, prog)
        assert all(
            isinstance(e, CommunicatorError) for e in exc.value.failures.values()
        )


class TestFailureHandling:
    def test_rank_exception_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(RankFailedError) as exc:
            run_spmd(3, prog)
        assert 1 in exc.value.failures
        assert isinstance(exc.value.failures[1], ValueError)

    def test_peer_failure_unblocks_receivers(self):
        """A crash on one rank must not leave others hanging until the
        watchdog: the abort wakes them immediately."""

        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("early death")
            comm.recv(0)  # would block forever

        t0 = time.time()
        with pytest.raises(RankFailedError) as exc:
            run_spmd(2, prog, timeout=30.0)
        assert time.time() - t0 < 5.0
        # The primary failure is reported, not the secondary deadlock.
        assert isinstance(exc.value.failures[0], RuntimeError)

    def test_deadlock_watchdog(self):
        def prog(comm):
            comm.recv((comm.rank + 1) % comm.size)  # everyone waits

        with pytest.raises(RankFailedError) as exc:
            run_spmd(2, prog, timeout=0.2)
        assert all(
            isinstance(e, DeadlockError) for e in exc.value.failures.values()
        )


class TestMailbox:
    def test_put_get(self):
        box = Mailbox(0)
        box.put(source=1, context="c", tag="t", payload="hello")
        assert box.get(1, "c", "t", timeout=1.0) == "hello"

    def test_get_blocks_until_put(self):
        box = Mailbox(0)
        result = []

        def producer():
            time.sleep(0.05)
            box.put(2, "c", 0, payload=42)

        t = threading.Thread(target=producer)
        t.start()
        result.append(box.get(2, "c", 0, timeout=5.0))
        t.join()
        assert result == [42]

    def test_timeout_raises(self):
        box = Mailbox(0)
        with pytest.raises(DeadlockError):
            box.get(1, "c", "t", timeout=0.05)

    def test_any_tag(self):
        box = Mailbox(0)
        box.put(1, "c", "zeta", payload="z")
        box.put(1, "c", "alpha", payload="a")
        # ANY_TAG delivers in arrival order, not tag order.
        assert box.get(1, "c", ANY_TAG, timeout=1.0) == "z"
        assert box.get(1, "c", ANY_TAG, timeout=1.0) == "a"

    def test_context_isolation(self):
        box = Mailbox(0)
        box.put(1, "ctx1", "t", payload="one")
        with pytest.raises(DeadlockError):
            box.get(1, "ctx2", "t", timeout=0.05)

    def test_pending(self):
        box = Mailbox(0)
        assert box.pending() == 0
        box.put(1, "c", "t", payload=1)
        box.put(1, "c", "t", payload=2)
        assert box.pending() == 2

    def test_abort_check(self):
        box = Mailbox(0)
        with pytest.raises(DeadlockError, match="peer rank failed"):
            box.get(1, "c", "t", timeout=60.0, abort_check=lambda: True)


class TestMailboxAbortTimeoutRace:
    """The timeout branch of Mailbox.get must not blame a deadlock when
    the real cause is a peer failure that raced the expiring deadline."""

    def test_abort_via_notified_wakeup_blames_peer(self):
        box = Mailbox(0)
        aborted = threading.Event()

        def killer():
            time.sleep(0.05)
            aborted.set()
            box.interrupt()

        t = threading.Thread(target=killer)
        t.start()
        t0 = time.monotonic()
        with pytest.raises(DeadlockError, match="peer rank failed"):
            box.get(1, "c", "t", timeout=60.0, abort_check=aborted.is_set)
        t.join()
        # Woken by the interrupt, not by the 60s watchdog.
        assert time.monotonic() - t0 < 5.0

    def test_abort_racing_expired_timeout_blames_peer(self):
        """abort_check is False when the wait starts and True by the time
        the deadline expires: exactly the loop-top check passing and the
        timeout-branch check firing. The error must carry the
        peer-failure message, not 'timed out after'."""
        box = Mailbox(0)
        calls = []

        def abort_check():
            calls.append(None)
            return len(calls) > 1  # False at loop top, True after timeout

        with pytest.raises(DeadlockError, match="peer rank failed"):
            box.get(1, "c", "t", timeout=0.05, abort_check=abort_check)
        # No messages and no interrupts: the wait slept straight through
        # to the deadline, so the check ran exactly twice.
        assert len(calls) == 2

    def test_timeout_with_healthy_peers_still_blames_deadlock(self):
        box = Mailbox(0)
        with pytest.raises(DeadlockError, match="timed out after"):
            box.get(1, "c", "t", timeout=0.05, abort_check=lambda: False)


class TestJoinWatchdog:
    def test_wedged_rank_outside_receive_is_named(self):
        """The mailbox watchdog only covers ranks blocked in a receive; a
        rank spinning in user code must be caught by the join watchdog,
        which names it instead of hanging the join forever."""
        release = threading.Event()

        def prog(comm):
            if comm.rank == 1:
                while not release.wait(0.01):  # wedged until the test ends
                    pass
            return comm.rank

        try:
            t0 = time.monotonic()
            with pytest.raises(DeadlockError, match=r"\[1\].*wedged outside"):
                run_spmd(2, prog, timeout=0.2)
            # Bounded by 2*timeout+1, not the default 60s join.
            assert time.monotonic() - t0 < 10.0
        finally:
            release.set()


class TestFinalizeCascade:
    def test_secondary_abort_noise_is_suppressed(self):
        """One real failure plus two ranks unblocked by the abort: only
        the primary exception is reported, the DeadlockError cascade on
        the survivors is dropped entirely."""

        def prog(comm):
            if comm.rank == 1:
                raise ValueError("primary")
            comm.recv(1)  # ranks 0 and 2 block, then get aborted

        with pytest.raises(RankFailedError) as exc:
            run_spmd(3, prog, timeout=30.0)
        assert set(exc.value.failures) == {1}
        assert isinstance(exc.value.failures[1], ValueError)

    def test_multiple_primaries_all_reported(self):
        def prog(comm):
            if comm.rank in (0, 2):
                raise RuntimeError(f"boom-{comm.rank}")
            comm.recv(0)

        with pytest.raises(RankFailedError) as exc:
            run_spmd(3, prog, timeout=30.0)
        assert set(exc.value.failures) == {0, 2}
        assert all(
            isinstance(e, RuntimeError) for e in exc.value.failures.values()
        )
