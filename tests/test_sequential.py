"""Tests for the sequential two-level substrate (Fig. 1a): the LRU fast
memory and the blocked vs naive matmul traffic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import sequential_bandwidth_lower_bound
from repro.exceptions import ParameterError
from repro.sequential.blocked_matmul import (
    blocked_matmul,
    blocked_traffic_model,
    naive_matmul,
    optimal_block_size,
)
from repro.sequential.cache import FastMemory


class TestFastMemory:
    def test_miss_loads(self):
        fm = FastMemory(100)
        fm.touch("a", 10)
        assert fm.stats.misses == 1
        assert fm.stats.words_loaded == 10
        assert fm.used_words == 10

    def test_hit_free(self):
        fm = FastMemory(100)
        fm.touch("a", 10)
        fm.touch("a", 10)
        assert fm.stats.hits == 1
        assert fm.stats.words_loaded == 10

    def test_lru_eviction_order(self):
        fm = FastMemory(30)
        fm.touch("a", 10)
        fm.touch("b", 10)
        fm.touch("c", 10)
        fm.touch("a", 10)  # refresh a; b is now LRU
        fm.touch("d", 10)  # evicts b
        assert fm.contains("a") and fm.contains("c") and fm.contains("d")
        assert not fm.contains("b")

    def test_clean_eviction_free(self):
        fm = FastMemory(10)
        fm.touch("a", 10)
        fm.touch("b", 10)  # evicts clean a: no writeback
        assert fm.stats.words_stored == 0

    def test_dirty_eviction_writes_back(self):
        fm = FastMemory(10)
        fm.touch("a", 10, write=True)
        fm.touch("b", 10)
        assert fm.stats.words_stored == 10

    def test_create_skips_load(self):
        fm = FastMemory(100)
        fm.create("c", 20)
        assert fm.stats.words_loaded == 0
        fm.flush()
        assert fm.stats.words_stored == 20  # created blocks are dirty

    def test_create_duplicate_rejected(self):
        fm = FastMemory(100)
        fm.create("c", 20)
        with pytest.raises(ParameterError):
            fm.create("c", 20)

    def test_explicit_evict(self):
        fm = FastMemory(100)
        fm.touch("a", 10, write=True)
        fm.evict("a")
        assert fm.stats.words_stored == 10
        with pytest.raises(ParameterError):
            fm.evict("a")

    def test_oversized_block_rejected(self):
        fm = FastMemory(10)
        with pytest.raises(ParameterError):
            fm.touch("big", 11)

    def test_block_resize_rejected(self):
        fm = FastMemory(100)
        fm.touch("a", 10)
        with pytest.raises(ParameterError):
            fm.touch("a", 20)

    def test_flush_empties(self):
        fm = FastMemory(100)
        fm.touch("a", 10)
        fm.touch("b", 10, write=True)
        fm.flush()
        assert fm.used_words == 0
        assert fm.stats.words_stored == 10

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60))
    @settings(max_examples=30)
    def test_capacity_never_exceeded(self, accesses):
        fm = FastMemory(35)
        for key in accesses:
            fm.touch(key, 10)
            assert fm.used_words <= 35

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40))
    @settings(max_examples=30)
    def test_conservation_loads_cover_distinct_misses(self, accesses):
        fm = FastMemory(20)
        for key in accesses:
            fm.touch(key, 10)
        assert fm.stats.words_loaded == 10 * fm.stats.misses
        assert fm.stats.hits + fm.stats.misses == len(accesses)


class TestBlockSize:
    def test_three_tiles_fit(self):
        b = optimal_block_size(3 * 16 * 16)
        assert b == 16
        assert 3 * b * b <= 3 * 16 * 16

    def test_minimum(self):
        assert optimal_block_size(3) == 1

    def test_invalid(self):
        with pytest.raises(ParameterError):
            optimal_block_size(2)


class TestBlockedMatmul:
    @pytest.mark.parametrize("n,M", [(16, 3 * 4 * 4), (48, 3 * 8 * 8), (30, 3 * 6 * 6)])
    def test_correct(self, n, M, rng):
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        fm = FastMemory(M)
        assert np.allclose(blocked_matmul(a, b, fm), a @ b)

    def test_traffic_tracks_model(self, rng):
        n, M = 48, 3 * 8 * 8
        a = rng.standard_normal((n, n))
        fm = FastMemory(M)
        blocked_matmul(a, a, fm)
        model = blocked_traffic_model(n, M)
        assert 0.8 * model < fm.stats.words_moved < 1.5 * model

    def test_traffic_dominates_lower_bound(self, rng):
        """Eq. (3): any schedule moves at least F/sqrt(M) words."""
        n, M = 48, 3 * 8 * 8
        a = rng.standard_normal((n, n))
        fm = FastMemory(M)
        blocked_matmul(a, a, fm)
        lb = sequential_bandwidth_lower_bound(2.0 * n**3, M)
        assert fm.stats.words_moved >= lb

    def test_traffic_scales_as_inverse_sqrt_memory(self, rng):
        """4x the memory -> ~half the traffic (the 1/sqrt(M) law)."""
        n = 48
        a = rng.standard_normal((n, n))
        fm1 = FastMemory(3 * 8 * 8)
        blocked_matmul(a, a, fm1)
        fm2 = FastMemory(3 * 16 * 16)
        blocked_matmul(a, a, fm2)
        ratio = fm1.stats.words_moved / fm2.stats.words_moved
        assert ratio == pytest.approx(2.0, rel=0.25)


class TestNaiveMatmul:
    def test_correct(self, rng):
        n = 24
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        fm = FastMemory(3 * n)
        assert np.allclose(naive_matmul(a, b, fm), a @ b)

    def test_traffic_cubic_when_memory_small(self, rng):
        n = 32
        a = rng.standard_normal((n, n))
        fm = FastMemory(3 * n)  # holds a row + a couple of columns
        naive_matmul(a, a, fm)
        # Every B column reloads for every row: ~n^3 words.
        assert fm.stats.words_moved > 0.8 * n**3

    def test_blocked_beats_naive(self, rng):
        """The communication-avoidance payoff at equal fast memory."""
        n, M = 48, 3 * 8 * 8
        a = rng.standard_normal((n, n))
        fm_b = FastMemory(M)
        blocked_matmul(a, a, fm_b)
        fm_n = FastMemory(M)
        naive_matmul(a, a, fm_n)
        assert fm_b.stats.words_moved < 0.5 * fm_n.stats.words_moved
