"""Tests for triangular solves and the end-to-end linear solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.lu import blocked_lu, lu_2d
from repro.algorithms.trisolve import (
    lu_solve,
    lu_solve_2d,
    trisolve_lower,
    trisolve_lower_2d,
    trisolve_upper,
    trisolve_upper_2d,
)
from repro.core.parameters import MachineParameters
from repro.exceptions import ParameterError, RankFailedError
from repro.simmpi.engine import run_spmd

MACHINE = MachineParameters(
    gamma_t=1e-9, beta_t=1e-8, alpha_t=1e-6,
    gamma_e=1e-9, beta_e=1e-8, alpha_e=0.0,
    delta_e=1e-9, epsilon_e=0.0,
    memory_words=1e9, max_message_words=1e9,
)


def dominant(n, rng):
    return rng.standard_normal((n, n)) + n * np.eye(n)


class TestSequentialTrisolve:
    def test_lower_unit(self, rng):
        n = 16
        lo = np.tril(rng.standard_normal((n, n)), -1) + np.eye(n)
        b = rng.standard_normal(n)
        y = trisolve_lower(lo, b)
        assert np.allclose(lo @ y, b)

    def test_lower_nonunit(self, rng):
        n = 16
        lo = np.tril(rng.standard_normal((n, n)), -1) + 3 * np.eye(n)
        b = rng.standard_normal(n)
        y = trisolve_lower(lo, b, unit_diagonal=False)
        assert np.allclose(lo @ y, b)

    def test_upper(self, rng):
        n = 16
        up = np.triu(rng.standard_normal((n, n)), 1) + 3 * np.eye(n)
        b = rng.standard_normal(n)
        x = trisolve_upper(up, b)
        assert np.allclose(up @ x, b)

    def test_flops_quadratic(self, rng):
        n = 32
        up = np.triu(rng.standard_normal((n, n)), 1) + 3 * np.eye(n)
        flops = []
        trisolve_upper(up, rng.standard_normal(n), flop_counter=flops.append)
        assert sum(flops) == pytest.approx(n * n, rel=0.1)

    def test_singular_detected(self):
        up = np.zeros((3, 3))
        with pytest.raises(ParameterError):
            trisolve_upper(up, np.ones(3))

    def test_shape_validation(self):
        with pytest.raises(ParameterError):
            trisolve_lower(np.eye(3), np.ones(4))
        with pytest.raises(ParameterError):
            trisolve_lower(np.zeros((3, 4)), np.ones(3))


class TestParallelTrisolve:
    @pytest.mark.parametrize("p", [1, 4, 9, 16])
    def test_forward(self, p, rng):
        n = 24
        a = dominant(n, rng)
        b = rng.standard_normal(n)
        lo_ref, _ = blocked_lu(a, block=8)
        q = int(p**0.5)

        def prog(comm):
            lo_tile, _ = lu_2d(comm, a)
            return trisolve_lower_2d(comm, lo_tile, b)

        out = run_spmd(p, prog)
        y_ref = trisolve_lower(lo_ref, b)
        for r, res in enumerate(out.results):
            i, j = divmod(r, q)
            if i == j:
                bs = n // q
                assert np.allclose(res, y_ref[i * bs : (i + 1) * bs])
            else:
                assert res is None

    @pytest.mark.parametrize("p", [4, 9])
    def test_backward(self, p, rng):
        n = 36
        a = dominant(n, rng)
        y = rng.standard_normal(n)
        _, up_ref = blocked_lu(a, block=6)
        q = int(p**0.5)

        def prog(comm):
            _, up_tile = lu_2d(comm, a)
            return trisolve_upper_2d(comm, up_tile, y)

        out = run_spmd(p, prog)
        x_ref = trisolve_upper(up_ref, y)
        bs = n // q
        for r, res in enumerate(out.results):
            i, j = divmod(r, q)
            if i == j:
                assert np.allclose(res, x_ref[i * bs : (i + 1) * bs])

    def test_critical_path_grows_with_p(self, rng):
        """Substitution is a pure chain: the virtual-clock time degrades
        relative to the per-rank bound as p grows."""
        n = 48
        a = dominant(n, rng)
        b = rng.standard_normal(n)

        def prog(comm):
            lo_tile, _ = lu_2d(comm, a)
            trisolve_lower_2d(comm, lo_tile, b)

        r4 = run_spmd(4, prog, machine=MACHINE).report
        r16 = run_spmd(16, prog, machine=MACHINE).report
        gap4 = r4.simulated_time / r4.estimate_time(MACHINE).total
        gap16 = r16.simulated_time / r16.estimate_time(MACHINE).total
        assert gap16 > gap4


class TestLUSolve:
    def test_sequential(self, rng):
        n = 30
        a = dominant(n, rng)
        b = rng.standard_normal(n)
        x = lu_solve(a, b, block=10)
        assert np.allclose(a @ x, b)

    @pytest.mark.parametrize("p", [1, 4, 9, 16])
    def test_parallel_full_solution_everywhere(self, p, rng):
        n = 24
        a = dominant(n, rng)
        b = rng.standard_normal(n)
        out = run_spmd(p, lu_solve_2d, a, b)
        for x in out.results:
            assert np.allclose(a @ x, b)

    def test_matches_numpy(self, rng):
        n = 16
        a = dominant(n, rng)
        b = rng.standard_normal(n)
        out = run_spmd(4, lu_solve_2d, a, b)
        assert np.allclose(out.results[0], np.linalg.solve(a, b))

    def test_rhs_validation(self, rng):
        with pytest.raises(RankFailedError):
            run_spmd(4, lu_solve_2d, dominant(8, rng), np.ones(9))

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=5, deadline=None)
    def test_property_random_systems(self, seed):
        rng = np.random.default_rng(seed)
        n = 16
        a = dominant(n, rng)
        b = rng.standard_normal(n)
        out = run_spmd(4, lu_solve_2d, a, b)
        assert np.allclose(a @ out.results[0], b)
