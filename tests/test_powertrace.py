"""Power telemetry acceptance tests.

The hard invariant (ISSUE acceptance matrix): for every scenario in the
CLI registry at p in {4, 16, 64} (caps at its nearest admissible
p = 7^k points), the per-rank power-trace integral reproduces the
rank's Eq. (2) pricing bit-exactly from replayed counts, the aggregate
terms ARE the ModelProfile terms, and the whole-run average power
equals ``core.power.average_power_from_report`` bitwise.
"""

import numpy as np
import pytest

from repro.analysis.powertrace import (
    SCHEMA,
    PowerCaps,
    PowerTrace,
    catalog_power_caps,
)
from repro.analysis.profiler import ENERGY_TERM_KEYS, ModelProfile
from repro.analysis.validation import default_machine
from repro.cli import _build_trace_program
from repro.core.power import average_power_from_report
from repro.exceptions import ParameterError
from repro.simmpi import run_spmd

MACHINE = default_machine()

#: (workload, p, n) — p in {4, 16, 64} wherever the scenario's layout
#: admits it. caps needs p = 7^k, so it runs at 7 and 49; fft needs
#: p^2 | n, so p=64 rides on n=4096.
MATRIX = [
    ("matmul25d", 4, 16),
    ("matmul25d", 16, 16),
    ("matmul25d", 64, 16),
    ("cannon", 4, 16),
    ("cannon", 16, 16),
    ("cannon", 64, 16),
    ("summa", 4, 16),
    ("summa", 16, 16),
    ("summa", 64, 16),
    ("nbody", 4, 64),
    ("nbody", 16, 64),
    ("nbody", 64, 64),
    ("fft", 4, 1024),
    ("fft", 16, 1024),
    ("fft", 64, 4096),
    ("caps", 7, 14),
    ("caps", 49, 28),
]


def _trace(workload, p, n, machine=MACHINE, **kwargs):
    program, prog_args, label = _build_trace_program(workload, p, n)
    out = run_spmd(
        p, program, *prog_args, machine=machine, trace=True, **kwargs
    )
    return out, PowerTrace.from_result(out, machine, label=label)


class TestBitExactness:
    @pytest.mark.parametrize("workload,p,n", MATRIX)
    def test_acceptance_matrix(self, workload, p, n):
        out, pt = _trace(workload, p, n)
        report = out.report

        # Aggregate terms ARE the ModelProfile terms (same floats).
        profile = ModelProfile.from_report(report, MACHINE)
        assert pt.energy_terms == profile.energy_terms
        assert pt.energy_total == profile.energy.total
        assert pt.time_total == profile.time.total

        # Whole-run average power is E/T on the same floats.
        assert pt.average_watts == average_power_from_report(
            report, MACHINE, memory_words=pt.memory_words
        )

        # Per-rank: the closed-form integral's counts are the counter
        # snapshots, bit for bit, so each term is rate x count exactly.
        T = pt.time.total
        for r in range(report.size):
            counters = report.ranks[r]
            rt = pt.ranks[r]
            assert rt.flops == counters.flops
            assert rt.words == counters.words_sent
            assert rt.messages == counters.messages_sent
            assert pt.rank_energy_terms(r) == {
                "gammaF": MACHINE.gamma_e * counters.flops,
                "betaW": MACHINE.beta_e * counters.words_sent,
                "alphaS": MACHINE.alpha_e * counters.messages_sent,
                "deltaMT": MACHINE.delta_e * pt.memory_words * T,
                "epsT": MACHINE.epsilon_e * T,
            }

    def test_numeric_integral_matches_closed_form(self):
        # sum(watts * dt) re-rounds, so it only matches the closed form
        # to float re-association — but that is a 1e-9 statement, and
        # it covers the extra baseline draw on [T_model, T_sim].
        _, pt = _trace("matmul25d", 8, 16)
        for r in range(pt.size):
            terms = pt.rank_energy_terms(r)
            dynamic = terms["gammaF"] + terms["betaW"] + terms["alphaS"]
            expected = dynamic + pt.baseline_watts * pt.horizon
            assert pt.trace_joules(r) == pytest.approx(expected, rel=1e-9)

    def test_rank_energy_sums_in_term_key_order(self):
        _, pt = _trace("cannon", 4, 16)
        terms = pt.rank_energy_terms(0)
        assert pt.rank_energy(0) == sum(terms[k] for k in ENERGY_TERM_KEYS)


class TestStructure:
    def test_segments_tile_horizon_exactly(self):
        _, pt = _trace("summa", 4, 16)
        for rt in pt.ranks:
            assert rt.segments[0].t0 == 0.0
            assert rt.segments[-1].t1 == pt.horizon
            for a, b in zip(rt.segments, rt.segments[1:]):
                assert a.t1 == b.t0
        assert pt.envelope[0].t0 == 0.0
        assert pt.envelope[-1].t1 == pt.horizon
        for a, b in zip(pt.envelope, pt.envelope[1:]):
            assert a.t1 == b.t0

    def test_peak_is_envelope_max_and_bounded_by_rank_sum(self):
        _, pt = _trace("matmul25d", 8, 16)
        assert pt.peak_watts == max(seg.watts for seg in pt.envelope)
        assert pt.peak_watts <= sum(rt.peak_watts for rt in pt.ranks) + 1e-12
        assert pt.peak_watts >= pt.size * pt.baseline_watts

    def test_utilization_fractions_sum_to_one(self):
        _, pt = _trace("nbody", 4, 64)
        for frac in pt.utilization().values():
            assert frac["busy"] + frac["stall"] + frac["idle"] == (
                pytest.approx(1.0, rel=1e-9)
            )

    def test_stalled_receives_draw_baseline_only(self):
        _, pt = _trace("cannon", 4, 16)
        stalls = [
            seg
            for rt in pt.ranks
            for seg in rt.segments
            if seg.kind in ("stall", "idle")
        ]
        assert stalls  # cannon shifts always stall someone
        for seg in stalls:
            assert seg.watts == pt.baseline_watts

    def test_to_json_payload(self):
        _, pt = _trace("fft", 4, 1024)
        payload = pt.to_json()
        assert payload["schema"] == SCHEMA
        assert payload["p"] == 4
        assert len(payload["per_rank"]) == 4
        assert payload["average_watts"] == pt.average_watts
        assert payload["peak_watts"] == pt.peak_watts
        for row in payload["per_rank"]:
            assert set(row["energy_terms"]) == set(ENERGY_TERM_KEYS)
        for (t0, t1, watts), seg in zip(payload["envelope"], pt.envelope):
            assert (t0, t1, watts) == (seg.t0, seg.t1, seg.watts)

    def test_render_mentions_headline_numbers(self):
        _, pt = _trace("matmul25d", 8, 16)
        text = pt.render()
        assert "machine power over virtual time" in text
        assert "average" in text and "peak" in text
        assert "mean rank utilization" in text


class TestCapViolations:
    def test_cap_above_peak_finds_nothing(self):
        _, pt = _trace("matmul25d", 8, 16)
        assert pt.cap_violations(pt.peak_watts + 1.0) == ()

    def test_cap_below_peak_finds_merged_intervals(self):
        _, pt = _trace("matmul25d", 8, 16)
        cap = pt.size * pt.baseline_watts + 0.5 * (
            pt.peak_watts - pt.size * pt.baseline_watts
        )
        violations = pt.cap_violations(cap)
        assert violations
        for v in violations:
            assert v.rank is None
            assert 0.0 <= v.t0 < v.t1 <= pt.horizon
            assert v.peak_watts > cap
        # maximal intervals never touch: merged at shared endpoints
        for a, b in zip(violations, violations[1:]):
            assert a.t1 < b.t0
        assert max(v.peak_watts for v in violations) == pt.peak_watts

    def test_per_rank_cap_violations(self):
        _, pt = _trace("matmul25d", 8, 16)
        cap = pt.baseline_watts + 0.5 * (
            max(rt.peak_watts for rt in pt.ranks) - pt.baseline_watts
        )
        violations = pt.rank_cap_violations(cap)
        assert violations
        for v in violations:
            assert v.rank in range(pt.size)
            assert v.peak_watts > cap

    def test_nonpositive_cap_rejected(self):
        _, pt = _trace("cannon", 4, 16)
        with pytest.raises(ParameterError):
            pt.cap_violations(0.0)
        with pytest.raises(ParameterError):
            pt.rank_cap_violations(-1.0)


class TestCounterEvents:
    def test_counter_tracks_only_ph_c(self):
        _, pt = _trace("matmul25d", 8, 16)
        events = pt.counter_events()
        assert events
        names = {e["name"] for e in events}
        assert "machine power [W]" in names
        assert f"rank {pt.size - 1} power [W]" in names
        for e in events:
            assert e["ph"] == "C"
            assert set(e["args"]) == {"watts"}

    def test_tracks_close_at_zero(self):
        _, pt = _trace("cannon", 4, 16)
        events = pt.counter_events(per_rank=False)
        assert events[-1]["args"]["watts"] == 0.0
        assert events[-1]["ts"] == pytest.approx(pt.horizon * 1e6)


class TestRejections:
    def test_untraced_run_rejected(self):
        out = run_spmd(
            4,
            _build_trace_program("cannon", 4, 16)[0],
            *_build_trace_program("cannon", 4, 16)[1],
            machine=MACHINE,
        )
        with pytest.raises(ParameterError, match="trace=True"):
            PowerTrace.from_result(out, MACHINE)

    def test_dropped_events_rejected(self):
        program, prog_args, _label = _build_trace_program("matmul25d", 8, 16)
        out = run_spmd(
            8,
            program,
            *prog_args,
            machine=MACHINE,
            trace=True,
            trace_capacity=4,
        )
        with pytest.raises(ParameterError, match="trace_capacity"):
            PowerTrace.from_result(out, MACHINE)

    def test_unmodeled_run_rejected(self):
        program, prog_args, _label = _build_trace_program("cannon", 4, 16)
        out = run_spmd(4, program, *prog_args, trace=True)
        with pytest.raises(ParameterError, match="machine"):
            PowerTrace.from_result(out, MACHINE)


class TestImpulses:
    def test_zero_cost_machine_tallies_impulses(self):
        # beta_t = alpha_t = 0 makes every send span zero-width: its
        # joules land in impulse_joules, never in a segment — and the
        # closed-form integral still reproduces the counter pricing
        # bit-exactly (counts accumulate before the impulse check).
        machine = MACHINE.replace(beta_t=0.0, alpha_t=0.0, alpha_e=1e-7)
        out, pt = _trace("cannon", 4, 16, machine=machine)
        assert sum(rt.impulse_joules for rt in pt.ranks) > 0.0
        for r in range(pt.size):
            counters = out.report.ranks[r]
            terms = pt.rank_energy_terms(r)
            assert terms["betaW"] == machine.beta_e * counters.words_sent
            assert terms["alphaS"] == (
                machine.alpha_e * counters.messages_sent
            )


class TestCatalogCaps:
    def test_table1_values(self):
        caps = catalog_power_caps(8)
        assert isinstance(caps, PowerCaps)
        assert caps.per_processor_watts == pytest.approx(176.95)
        assert caps.total_watts == pytest.approx(8 * 176.95)
        assert caps.total_watts == 8 * caps.per_processor_watts

    def test_catalog_caps_hold_for_a_traced_run(self):
        # On the Table I machine a flop span draws exactly the chip TDP
        # (gamma_e / gamma_t = 150 W), below the 176.95 W catalog cap.
        from repro.machines.catalog import jaketown_machine

        machine = jaketown_machine()
        out, pt = _trace("matmul25d", 8, 16, machine=machine)
        caps = catalog_power_caps(pt.size)
        assert pt.rank_cap_violations(caps.per_processor_watts) == ()
        assert pt.cap_violations(caps.total_watts) == ()

    def test_rejects_nonpositive_p(self):
        with pytest.raises(ParameterError):
            catalog_power_caps(0)
