"""Tests for LU factorization, the n-body algorithms, and the FFT."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.fft import (
    assemble_fft_output,
    fft_flop_count,
    fft_parallel,
    fft_serial,
)
from repro.algorithms.lu import blocked_lu, lu_2d, lu_flop_count
from repro.algorithms.nbody import (
    COULOMB,
    GRAVITY,
    LENNARD_JONES,
    nbody_replicated,
    nbody_ring,
    nbody_serial,
)
from repro.exceptions import ParameterError, RankFailedError
from repro.simmpi.engine import run_spmd


def dominant(n, rng):
    return rng.standard_normal((n, n)) + n * np.eye(n)


class TestBlockedLU:
    @pytest.mark.parametrize("n,block", [(8, 2), (16, 16), (24, 8), (30, 7)])
    def test_factors(self, n, block, rng):
        a = dominant(n, rng)
        lo, up = blocked_lu(a, block=block)
        assert np.allclose(lo @ up, a)
        assert np.allclose(np.diag(lo), 1.0)
        assert np.allclose(lo, np.tril(lo))
        assert np.allclose(up, np.triu(up))

    def test_flops_order(self, rng):
        n = 32
        flops = []
        blocked_lu(dominant(n, rng), block=8, flop_counter=flops.append)
        measured = sum(flops)
        # Leading term (2/3) n^3 within a factor ~2 at this size.
        assert 0.5 * lu_flop_count(n) < measured < 3 * lu_flop_count(n)

    def test_zero_pivot_detected(self):
        with pytest.raises(ParameterError):
            blocked_lu(np.zeros((4, 4)))

    def test_nonsquare_rejected(self):
        with pytest.raises(ParameterError):
            blocked_lu(np.zeros((4, 6)))


class TestParallelLU:
    @pytest.mark.parametrize("p", [1, 4, 9, 16])
    def test_factors(self, p, rng):
        n = 24
        a = dominant(n, rng)
        out = run_spmd(p, lu_2d, a)
        q = int(p**0.5)
        lo = np.block([[out.results[i * q + j][0] for j in range(q)] for i in range(q)])
        up = np.block([[out.results[i * q + j][1] for j in range(q)] for i in range(q)])
        assert np.allclose(lo @ up, a)
        assert np.allclose(np.diag(lo), 1.0)
        assert np.allclose(up, np.triu(up))

    def test_matches_serial_factors(self, rng):
        """LU without pivoting is unique: parallel == serial factors."""
        n = 16
        a = dominant(n, rng)
        lo_s, up_s = blocked_lu(a, block=4)
        out = run_spmd(4, lu_2d, a)
        lo = np.block([[out.results[0][0], out.results[1][0]],
                       [out.results[2][0], out.results[3][0]]])
        up = np.block([[out.results[0][1], out.results[1][1]],
                       [out.results[2][1], out.results[3][1]]])
        assert np.allclose(lo, lo_s)
        assert np.allclose(up, up_s)

    def test_message_count_grows_with_p(self, rng):
        """The latency anti-scaling the paper attributes to LU's critical
        path: per-rank S grows with p at fixed n."""
        n = 48
        a = dominant(n, rng)
        s4 = run_spmd(4, lu_2d, a).report.max_messages
        s16 = run_spmd(16, lu_2d, a).report.max_messages
        assert s16 > s4

    def test_indivisible_rejected(self, rng):
        with pytest.raises(RankFailedError):
            run_spmd(4, lu_2d, dominant(9, rng))


class TestNBodySerial:
    def test_newtons_third_law_gravity(self, rng):
        pos = rng.standard_normal((20, 3))
        q = rng.uniform(0.5, 2.0, 20)
        f = nbody_serial(pos, q, GRAVITY)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-9)

    def test_newtons_third_law_lj(self, rng):
        pos = rng.standard_normal((16, 3)) * 3
        q = np.ones(16)
        f = nbody_serial(pos, q, LENNARD_JONES)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-6)

    def test_two_body_gravity_attracts(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        q = np.array([1.0, 1.0])
        f = nbody_serial(pos, q, GRAVITY)
        assert f[0, 0] > 0  # particle 0 pulled toward +x
        assert f[1, 0] < 0

    def test_two_body_coulomb_repels(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        q = np.array([1.0, 1.0])
        f = nbody_serial(pos, q, COULOMB)
        assert f[0, 0] < 0
        assert f[1, 0] > 0

    def test_gravity_inverse_square(self):
        q = np.array([1.0, 1.0])
        near = nbody_serial(np.array([[0.0, 0, 0], [1.0, 0, 0]]), q, GRAVITY)
        far = nbody_serial(np.array([[0.0, 0, 0], [2.0, 0, 0]]), q, GRAVITY)
        assert near[0, 0] / far[0, 0] == pytest.approx(4.0, rel=1e-6)

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            nbody_serial(rng.standard_normal(5), np.ones(5))
        with pytest.raises(ParameterError):
            nbody_serial(rng.standard_normal((5, 3)), np.ones(4))


class TestNBodyParallel:
    @pytest.mark.parametrize("p", [1, 2, 4, 6])
    def test_ring_matches_serial(self, p, rng):
        n = 24
        pos = rng.standard_normal((n, 3))
        q = rng.uniform(0.5, 2.0, n)
        ref = nbody_serial(pos, q, GRAVITY)
        out = run_spmd(p, nbody_ring, pos, q, GRAVITY)
        assert np.allclose(np.vstack(out.results), ref)

    def test_ring_flop_count(self, rng):
        n, p = 24, 4
        pos = rng.standard_normal((n, 3))
        q = np.ones(n)
        out = run_spmd(p, nbody_ring, pos, q, GRAVITY)
        assert out.report.total_flops == pytest.approx(
            GRAVITY.flops_per_pair * n * n
        )

    @pytest.mark.parametrize("p,c", [(4, 1), (4, 2), (8, 2), (16, 4), (12, 2)])
    def test_replicated_matches_serial(self, p, c, rng):
        n = 48
        pos = rng.standard_normal((n, 3))
        q = rng.uniform(0.5, 2.0, n)
        ref = nbody_serial(pos, q, GRAVITY)
        out = run_spmd(p, nbody_replicated, pos, q, c, GRAVITY)
        r = p // c
        got = np.vstack([out.results[i * c] for i in range(r)])
        assert np.allclose(got, ref)

    def test_replicated_non_leader_none(self, rng):
        pos = rng.standard_normal((8, 3))
        q = np.ones(8)
        out = run_spmd(8, nbody_replicated, pos, q, 2, GRAVITY)
        for rank, res in enumerate(out.results):
            if rank % 2 == 0:
                assert res is not None
            else:
                assert res is None

    def test_replication_cuts_ring_traffic(self, rng):
        """W per rank must drop ~1/c at fixed block size."""
        n = 96
        pos = rng.standard_normal((n, 3))
        q = np.ones(n)
        w1 = run_spmd(4, nbody_replicated, pos, q, 1, GRAVITY).report.max_words
        w4 = run_spmd(16, nbody_replicated, pos, q, 4, GRAVITY).report.max_words
        assert w4 < 0.75 * w1

    def test_c_must_divide_p(self, rng):
        pos = rng.standard_normal((12, 3))
        with pytest.raises(RankFailedError):
            run_spmd(6, nbody_replicated, pos, np.ones(12), 4)

    def test_c_must_divide_teams(self, rng):
        # p=8, c=4 -> r=2 teams, 2 % 4 != 0
        pos = rng.standard_normal((8, 3))
        with pytest.raises(RankFailedError):
            run_spmd(8, nbody_replicated, pos, np.ones(8), 4)

    def test_lj_replicated(self, rng):
        n = 24
        pos = rng.standard_normal((n, 3)) * 3
        q = np.ones(n)
        ref = nbody_serial(pos, q, LENNARD_JONES)
        out = run_spmd(8, nbody_replicated, pos, q, 2, LENNARD_JONES)
        got = np.vstack([out.results[i * 2] for i in range(4)])
        assert np.allclose(got, ref)


class TestFFTSerial:
    @pytest.mark.parametrize("n", [1, 2, 8, 64, 512])
    def test_matches_numpy(self, n, rng):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(fft_serial(x), np.fft.fft(x))

    def test_real_input(self, rng):
        x = rng.standard_normal(128)
        assert np.allclose(fft_serial(x), np.fft.fft(x))

    def test_flop_count(self, rng):
        x = rng.standard_normal(256)
        flops = []
        fft_serial(x, flop_counter=flops.append)
        assert sum(flops) == pytest.approx(fft_flop_count(256))
        assert fft_flop_count(256) == 5 * 256 * 8

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ParameterError):
            fft_serial(np.zeros(12))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_parseval_property(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(64)
        y = fft_serial(x)
        assert np.sum(np.abs(y) ** 2) == pytest.approx(64 * np.sum(x**2), rel=1e-9)


class TestFFTParallel:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    @pytest.mark.parametrize("mode", ["naive", "bruck"])
    def test_matches_numpy(self, p, mode, rng):
        n = 256
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        out = run_spmd(p, fft_parallel, x, mode)
        spec = assemble_fft_output(list(out.results), n)
        assert np.allclose(spec, np.fft.fft(x))

    def test_message_counts(self, rng):
        x = rng.standard_normal(1024)
        p = 8
        s_naive = run_spmd(p, fft_parallel, x, "naive").report.max_messages
        s_bruck = run_spmd(p, fft_parallel, x, "bruck").report.max_messages
        assert s_naive == p - 1
        # Bruck: log2 p exchanges + a couple of metadata-free... exactly log2 p
        assert s_bruck == math.log2(p)

    def test_word_tradeoff(self, rng):
        x = rng.standard_normal(1024)
        p = 8
        w_naive = run_spmd(p, fft_parallel, x, "naive").report.max_words
        w_bruck = run_spmd(p, fft_parallel, x, "bruck").report.max_words
        assert w_bruck > w_naive  # log p hops vs direct

    def test_flops_scale(self, rng):
        x = rng.standard_normal(256)
        out = run_spmd(4, fft_parallel, x, "naive")
        # Two local FFT passes + twiddle: within 2x of 5 n log n.
        base = fft_flop_count(256)
        assert 0.5 * base < out.report.total_flops < 2.5 * base

    def test_bad_mode(self, rng):
        with pytest.raises(RankFailedError):
            run_spmd(2, fft_parallel, np.zeros(64), "quantum")

    def test_too_short_signal(self, rng):
        with pytest.raises(RankFailedError):
            run_spmd(8, fft_parallel, np.zeros(16), "naive")
