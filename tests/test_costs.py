"""Unit and property tests for the per-algorithm cost expressions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.costs import (
    OMEGA_STRASSEN,
    Classical2DMatMulCosts,
    ClassicalMatMulCosts,
    FFTCosts,
    LU25DCosts,
    NBodyCosts,
    StrassenMatMulCosts,
    validate_memory,
)
from repro.exceptions import MemoryRangeError, ParameterError

sizes = st.floats(min_value=64.0, max_value=1e7)
procs = st.floats(min_value=1.0, max_value=1e6)


class TestClassicalMatMul:
    costs = ClassicalMatMulCosts()

    def test_flops(self):
        assert self.costs.flops(100, 4, 1e4) == pytest.approx(100**3 / 4)

    def test_words_eq8(self):
        n, p, M = 1000.0, 8.0, 1e5
        assert self.costs.words(n, p, M) == pytest.approx(n**3 / (p * math.sqrt(M)))

    def test_messages_is_words_over_m(self):
        n, p, M, m = 1000.0, 8.0, 1e5, 512.0
        assert self.costs.messages(n, p, M, m) == pytest.approx(
            self.costs.words(n, p, M) / m
        )

    def test_memory_range_endpoints(self):
        n, p = 1000.0, 64.0
        lo, hi = self.costs.memory_range(n, p)
        assert lo == pytest.approx(n**2 / p)
        assert hi == pytest.approx(n**2 / p ** (2 / 3))

    def test_p_min_inverts_memory_min(self):
        n, M = 1000.0, 1e5
        p = self.costs.p_min(n, M)
        assert self.costs.memory_min(n, p) == pytest.approx(M)

    def test_p_max_inverts_memory_max(self):
        n, M = 1000.0, 1e5
        p = self.costs.p_max_perfect(n, M)
        assert self.costs.memory_max(n, p) == pytest.approx(M)

    def test_replication_factor(self):
        n, p = 1000.0, 100.0
        assert self.costs.replication_factor(n, p, 3 * n**2 / p) == pytest.approx(3.0)

    @given(sizes, procs, st.floats(min_value=2.0, max_value=1e9))
    def test_more_memory_less_traffic(self, n, p, M):
        assert self.costs.words(n, p, 2 * M) < self.costs.words(n, p, M)

    @given(sizes, procs, st.floats(min_value=2.0, max_value=1e9))
    def test_words_times_p_independent_of_p(self, n, p, M):
        w1 = self.costs.words(n, p, M) * p
        w2 = self.costs.words(n, 2 * p, M) * 2 * p
        assert w1 == pytest.approx(w2, rel=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            self.costs.flops(0, 4, 1e4)
        with pytest.raises(ParameterError):
            self.costs.words(10, -1, 1e4)
        with pytest.raises(ParameterError):
            self.costs.words(10, 4, 0)
        with pytest.raises(ParameterError):
            self.costs.messages(10, 4, 100, 0)


class TestClassical2D:
    costs = Classical2DMatMulCosts()

    def test_words_fixed_memory_point(self):
        n, p = 1000.0, 16.0
        assert self.costs.words(n, p) == pytest.approx(n**2 / 4.0)

    def test_degenerate_memory_range(self):
        n, p = 1000.0, 16.0
        lo, hi = self.costs.memory_range(n, p)
        assert lo == hi == pytest.approx(n**2 / p)

    def test_matches_25d_at_floor(self):
        n, p = 1000.0, 16.0
        M = n**2 / p
        full = ClassicalMatMulCosts()
        assert self.costs.words(n, p) == pytest.approx(full.words(n, p, M))


class TestStrassen:
    costs = StrassenMatMulCosts()

    def test_omega_default(self):
        assert self.costs.omega0 == pytest.approx(math.log2(7))

    def test_omega_validation(self):
        with pytest.raises(ParameterError):
            StrassenMatMulCosts(omega0=2.0)
        with pytest.raises(ParameterError):
            StrassenMatMulCosts(omega0=3.5)

    def test_flops(self):
        n, p = 1024.0, 7.0
        assert self.costs.flops(n, p, 1.0) == pytest.approx(n**OMEGA_STRASSEN / p)

    def test_omega3_matches_classical(self):
        s3 = StrassenMatMulCosts(omega0=3.0)
        c = ClassicalMatMulCosts()
        n, p, M = 512.0, 8.0, 1e4
        assert s3.words(n, p, M) == pytest.approx(c.words(n, p, M))
        assert s3.memory_max(n, p) == pytest.approx(c.memory_max(n, p))

    def test_memory_ceiling_below_classical(self):
        # Strassen saturates at n^2/p^(2/omega0) < n^2/p^(2/3).
        n, p = 1000.0, 64.0
        assert self.costs.memory_max(n, p) < ClassicalMatMulCosts().memory_max(n, p)

    def test_scaling_range_narrower_than_classical(self):
        n, M = 1000.0, 1e4
        assert self.costs.p_max_perfect(n, M) < ClassicalMatMulCosts().p_max_perfect(
            n, M
        )

    @given(sizes, procs, st.floats(min_value=2.0, max_value=1e9))
    def test_words_times_p_independent_of_p(self, n, p, M):
        w1 = self.costs.words(n, p, M) * p
        w2 = self.costs.words(n, 3 * p, M) * 3 * p
        assert w1 == pytest.approx(w2, rel=1e-9)


class TestLU25D:
    costs = LU25DCosts()

    def test_bandwidth_matches_matmul(self):
        n, p, M = 1000.0, 16.0, 1e5
        assert self.costs.words(n, p, M) == pytest.approx(
            ClassicalMatMulCosts().words(n, p, M)
        )

    def test_latency_is_sqrt_cp(self):
        n = 1000.0
        M = 1e5
        p = 16.0
        c = M * p / n**2
        s = self.costs.messages(n, p, M, m=1e6)
        assert s == pytest.approx(math.sqrt(c * p), rel=1e-9)

    def test_latency_grows_with_p(self):
        # The anti-scaling fact the paper highlights.
        n, M = 1000.0, 1e5
        s1 = self.costs.messages(n, 16.0, M, 1e6)
        s2 = self.costs.messages(n, 64.0, M, 1e6)
        assert s2 > s1

    def test_latency_independent_of_message_size(self):
        n, p, M = 1000.0, 16.0, 1e5
        assert self.costs.messages(n, p, M, 10.0) == self.costs.messages(
            n, p, M, 1e9
        )

    def test_replication(self):
        assert self.costs.replication(1000.0, 16.0, 1000.0**2 / 16.0) == pytest.approx(
            1.0
        )


class TestNBody:
    costs = NBodyCosts(interaction_flops=10.0)

    def test_flops_carry_f(self):
        assert self.costs.flops(100.0, 4.0, 10.0) == pytest.approx(10 * 100**2 / 4)

    def test_f_validation(self):
        with pytest.raises(ParameterError):
            NBodyCosts(interaction_flops=0.0)

    def test_words(self):
        n, p, M = 1e4, 16.0, 100.0
        assert self.costs.words(n, p, M) == pytest.approx(n**2 / (p * M))

    def test_memory_range(self):
        n, p = 1e4, 16.0
        assert self.costs.memory_min(n, p) == pytest.approx(n / p)
        assert self.costs.memory_max(n, p) == pytest.approx(n / 4.0)

    def test_p_bounds(self):
        n, M = 1e4, 100.0
        assert self.costs.p_min(n, M) == pytest.approx(100.0)
        assert self.costs.p_max_perfect(n, M) == pytest.approx(1e4)

    @given(sizes, procs, st.floats(min_value=1.0, max_value=1e6))
    def test_words_times_p_independent_of_p(self, n, p, M):
        w1 = self.costs.words(n, p, M) * p
        w2 = self.costs.words(n, 5 * p, M) * 5 * p
        assert w1 == pytest.approx(w2, rel=1e-9)


class TestFFT:
    def test_mode_validation(self):
        with pytest.raises(ParameterError):
            FFTCosts(all_to_all="magic")

    def test_flops(self):
        c = FFTCosts()
        assert c.flops(1024.0, 4.0) == pytest.approx(1024 * 10 / 4)

    def test_naive_costs(self):
        c = FFTCosts(all_to_all="naive")
        assert c.words(1024.0, 8.0) == pytest.approx(128.0)
        assert c.messages(1024.0, 8.0) == pytest.approx(8.0)

    def test_tree_costs(self):
        c = FFTCosts(all_to_all="tree")
        assert c.words(1024.0, 8.0) == pytest.approx(1024 * 3 / 8)
        assert c.messages(1024.0, 8.0) == pytest.approx(3.0)

    def test_single_rank_no_comm(self):
        c = FFTCosts()
        assert c.words(1024.0, 1.0) == 0.0
        assert c.messages(1024.0, 1.0) == 0.0

    def test_no_perfect_scaling_range(self):
        c = FFTCosts()
        n, M = 1024.0, 64.0
        assert c.p_min(n, M) == c.p_max_perfect(n, M)

    def test_naive_fewer_words_more_messages_than_tree(self):
        n, p = 4096.0, 16.0
        naive = FFTCosts(all_to_all="naive")
        tree = FFTCosts(all_to_all="tree")
        assert naive.words(n, p) < tree.words(n, p)
        assert naive.messages(n, p) > tree.messages(n, p)


class TestValidateMemory:
    def test_accepts_interior(self):
        c = ClassicalMatMulCosts()
        validate_memory(c, 1000.0, 64.0, 2 * 1000**2 / 64)

    def test_accepts_endpoints(self):
        c = ClassicalMatMulCosts()
        validate_memory(c, 1000.0, 64.0, c.memory_min(1000.0, 64.0))
        validate_memory(c, 1000.0, 64.0, c.memory_max(1000.0, 64.0))

    def test_rejects_below(self):
        c = ClassicalMatMulCosts()
        with pytest.raises(MemoryRangeError):
            validate_memory(c, 1000.0, 64.0, 1000**2 / 64 * 0.5)

    def test_rejects_above(self):
        c = ClassicalMatMulCosts()
        with pytest.raises(MemoryRangeError):
            validate_memory(c, 1000.0, 64.0, c.memory_max(1000.0, 64.0) * 2)
