"""Tests for the Strassen-Winograd variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.strassen import (
    strassen_flop_count,
    strassen_matmul,
    winograd_flop_count,
    winograd_matmul,
)
from repro.exceptions import ParameterError


class TestWinograd:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 48, 56, 96])
    def test_correct(self, n, rng):
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        assert np.allclose(winograd_matmul(a, b, cutoff=8), a @ b)

    def test_agrees_with_strassen(self, rng):
        n = 64
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        assert np.allclose(
            winograd_matmul(a, b, cutoff=4), strassen_matmul(a, b, cutoff=4)
        )

    def test_flop_counter_matches_prediction(self, rng):
        for n, cutoff in ((16, 4), (32, 8), (48, 8)):
            a = rng.standard_normal((n, n))
            flops = []
            winograd_matmul(a, a, cutoff=cutoff, flop_counter=flops.append)
            assert sum(flops) == pytest.approx(winograd_flop_count(n, cutoff))

    def test_fewer_adds_than_strassen(self):
        """15 vs 18 additions per level: Winograd strictly cheaper above
        the cutoff, equal at the base case."""
        assert winograd_flop_count(8, 8) == strassen_flop_count(8, 8)
        for n in (16, 64, 256, 1024):
            assert winograd_flop_count(n, 8) < strassen_flop_count(n, 8)

    def test_add_count_difference_exact(self):
        # One recursion level: difference = (18 - 15) h^2.
        n, cutoff = 16, 8
        h = n // 2
        assert strassen_flop_count(n, cutoff) - winograd_flop_count(
            n, cutoff
        ) == pytest.approx(3.0 * h * h)

    def test_same_exponent(self):
        """Both recursions are Theta(n^log2 7): their ratio converges."""
        r1 = winograd_flop_count(2048, 2) / strassen_flop_count(2048, 2)
        r2 = winograd_flop_count(4096, 2) / strassen_flop_count(4096, 2)
        assert abs(r1 - r2) < 0.01
        assert 0.8 < r1 < 1.0

    def test_validation(self, rng):
        with pytest.raises(ParameterError):
            winograd_matmul(np.zeros((4, 4)), np.zeros((6, 6)))
        with pytest.raises(ParameterError):
            winograd_matmul(np.eye(7), np.eye(7), cutoff=4)
        with pytest.raises(ParameterError):
            winograd_matmul(np.eye(4), np.eye(4), cutoff=0)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_matches_numpy_property(self, seed):
        rng = np.random.default_rng(seed)
        n = 32
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        assert np.allclose(winograd_matmul(a, b, cutoff=4), a @ b)
