"""Tests for the two-level (Fig. 2) models and the power module."""

import math

import pytest

from repro.core.costs import ClassicalMatMulCosts, NBodyCosts
from repro.core.parameters import TwoLevelMachineParameters
from repro.core.power import (
    average_power,
    max_p_under_total_power,
    per_processor_power,
)
from repro.core.twolevel import (
    TwoLevelCounts,
    matmul_twolevel_energy,
    matmul_twolevel_time,
    nbody_twolevel_energy,
    nbody_twolevel_time,
    twolevel_energy_from_counts,
    twolevel_time_from_counts,
)
from repro.exceptions import ParameterError


def tl(**over):
    base = dict(
        gamma_t=1e-9, gamma_e=2e-9, epsilon_e=1e-4,
        beta_t_node=1e-8, alpha_t_node=0.0,
        beta_e_node=2e-8, alpha_e_node=0.0,
        beta_t_core=1e-9, alpha_t_core=0.0,
        beta_e_core=2e-9, alpha_e_core=0.0,
        delta_e_node=1e-9, delta_e_core=1e-10,
        memory_node=2.0**24, memory_core=2.0**14,
        p_nodes=4, p_cores=8,
    )
    base.update(over)
    return TwoLevelMachineParameters(**base)


class TestMatmulTwoLevel:
    def test_time_terms(self):
        m = tl()
        n = 1000.0
        p = m.p_total
        expected = (
            m.gamma_t * n**3 / p
            + m.beta_t_node * n**3 / (m.p_nodes * math.sqrt(m.memory_node))
            + m.beta_t_core * n**3 / (p * math.sqrt(m.memory_core))
        )
        assert matmul_twolevel_time(m, n) == pytest.approx(expected)

    def test_energy_terms_as_printed(self):
        m = tl()
        n = 500.0
        pl = m.p_cores
        mem = m.delta_e_node * m.memory_node / pl + m.delta_e_core * m.memory_core
        expected = n**3 * (
            m.gamma_e
            + m.gamma_t * m.epsilon_e
            + (m.beta_e_node + m.beta_t_node * m.epsilon_e)
            / (pl * math.sqrt(m.memory_node))
            + (m.beta_e_core + m.beta_t_core * m.epsilon_e) / math.sqrt(m.memory_core)
            + m.gamma_t * mem
            + mem
            * (
                m.beta_t_node * pl / math.sqrt(m.memory_node)
                + m.beta_t_core / math.sqrt(m.memory_core)
            )
        )
        assert matmul_twolevel_energy(m, n) == pytest.approx(expected)

    def test_scales_cubically(self):
        m = tl()
        assert matmul_twolevel_time(m, 2000.0) == pytest.approx(
            8 * matmul_twolevel_time(m, 1000.0)
        )
        assert matmul_twolevel_energy(m, 2000.0) == pytest.approx(
            8 * matmul_twolevel_energy(m, 1000.0)
        )

    def test_energy_independent_of_p_nodes(self):
        """Eq. (12) has no p_n dependence — the two-level analogue of
        perfect strong scaling across nodes."""
        n = 1000.0
        e4 = matmul_twolevel_energy(tl(p_nodes=4), n)
        e16 = matmul_twolevel_energy(tl(p_nodes=16), n)
        assert e4 == pytest.approx(e16)

    def test_time_scales_with_nodes(self):
        n = 1000.0
        t4 = matmul_twolevel_time(tl(p_nodes=4), n)
        t16 = matmul_twolevel_time(tl(p_nodes=16), n)
        assert t16 < t4

    def test_invalid_n(self):
        with pytest.raises(ParameterError):
            matmul_twolevel_time(tl(), 0.0)


class TestNBodyTwoLevel:
    def test_time_terms(self):
        m = tl()
        n, f = 1e5, 10.0
        p = m.p_total
        expected = (
            f * n**2 * m.gamma_t / p
            + m.beta_t_node * n**2 / (m.memory_node * m.p_nodes)
            + m.beta_t_core * n**2 / (m.memory_core * p)
        )
        assert nbody_twolevel_time(m, n, f) == pytest.approx(expected)

    def test_energy_expansion_matches_printed_terms(self):
        """Expanding our compact product form must reproduce the paper's
        printed Eq. (17) term by term."""
        m = tl()
        n, f = 1e5, 10.0
        pl = m.p_cores
        printed = n**2 * (
            # constant group
            (
                f * m.gamma_e
                + f * m.gamma_t * m.epsilon_e
                + m.delta_e_node * m.beta_t_node
                + m.delta_e_core * m.beta_t_core
            )
            # 1/M_n group
            + (pl * m.beta_e_node + m.epsilon_e * pl * m.beta_t_node) / m.memory_node
            # 1/M_l group
            + (m.beta_e_core + m.epsilon_e * m.beta_t_core) / m.memory_core
            # f gamma_t memory terms
            + m.delta_e_node * f * m.gamma_t * m.memory_node / pl
            + m.delta_e_core * f * m.gamma_t * m.memory_core
            # cross terms
            + m.delta_e_node * m.beta_t_core * m.memory_node / (pl * m.memory_core)
            + m.delta_e_core * pl * m.beta_t_node * m.memory_core / m.memory_node
        )
        assert nbody_twolevel_energy(m, n, f) == pytest.approx(printed, rel=1e-12)

    def test_energy_independent_of_p_nodes(self):
        n, f = 1e5, 5.0
        assert nbody_twolevel_energy(tl(p_nodes=2), n, f) == pytest.approx(
            nbody_twolevel_energy(tl(p_nodes=32), n, f)
        )

    def test_invalid_f(self):
        with pytest.raises(ParameterError):
            nbody_twolevel_time(tl(), 100.0, 0.0)


class TestGenericComposition:
    def test_counts_validation(self):
        with pytest.raises(ParameterError):
            TwoLevelCounts(flops=-1.0)

    def test_time_composition(self):
        m = tl()
        c = TwoLevelCounts(
            flops=1e6, words_node=1e3, messages_node=10, words_core=1e4,
            messages_core=100,
        )
        expected = (
            m.gamma_t * 1e6
            + m.beta_t_node * 1e3
            + m.alpha_t_node * 10
            + m.beta_t_core * 1e4
            + m.alpha_t_core * 100
        )
        assert twolevel_time_from_counts(m, c) == pytest.approx(expected)

    def test_energy_composition(self):
        m = tl()
        c = TwoLevelCounts(flops=1e6, words_node=1e3, words_core=1e4)
        T = twolevel_time_from_counts(m, c)
        mem = m.delta_e_node * m.memory_node / m.p_cores + (
            m.delta_e_core * m.memory_core
        )
        expected = m.p_total * (
            m.gamma_e * 1e6
            + m.beta_e_node * 1e3
            + m.beta_e_core * 1e4
            + (mem + m.epsilon_e) * T
        )
        assert twolevel_energy_from_counts(m, c) == pytest.approx(expected)

    def test_nbody_eq17_consistent_with_composition(self):
        """Eq. (17) equals the generic composition with per-core internode
        traffic W_n = n^2/(M_n p_n) — the self-consistency the module
        docstring claims."""
        m = tl()
        n, f = 1e5, 10.0
        p = m.p_total
        counts = TwoLevelCounts(
            flops=f * n**2 / p,
            words_node=n**2 / (m.memory_node * m.p_nodes),
            words_core=n**2 / (m.memory_core * p),
        )
        assert nbody_twolevel_energy(m, n, f) == pytest.approx(
            twolevel_energy_from_counts(m, counts), rel=1e-12
        )


class TestPower:
    def test_average_power_is_E_over_T(self, machine):
        costs = ClassicalMatMulCosts()
        n, p = 1e4, 100.0
        M = costs.memory_min(n, p) * 2
        from repro.core.energy import energy
        from repro.core.timing import runtime

        expected = (
            energy(costs, machine, n, p, M).total
            / runtime(costs, machine, n, p, M).total
        )
        assert average_power(costs, machine, n, p, M) == pytest.approx(expected)

    def test_per_processor_power(self, machine):
        costs = NBodyCosts()
        n, p, M = 1e5, 100.0, 5e3
        assert per_processor_power(costs, machine, n, p, M) == pytest.approx(
            average_power(costs, machine, n, p, M) / p
        )

    def test_per_processor_power_independent_of_p(self, machine):
        """Inside the range, P/p depends only on M — the structural fact
        Section V-E leans on."""
        costs = NBodyCosts(interaction_flops=10.0)
        n, M = 1e6, 1e4
        p1 = per_processor_power(costs, machine, n, costs.p_min(n, M), M)
        p2 = per_processor_power(costs, machine, n, costs.p_min(n, M) * 4, M)
        assert p1 == pytest.approx(p2, rel=1e-9)

    def test_power_linear_in_p(self, machine):
        costs = NBodyCosts(interaction_flops=10.0)
        n, M = 1e6, 1e4
        p0 = costs.p_min(n, M)
        pw1 = average_power(costs, machine, n, p0, M)
        pw2 = average_power(costs, machine, n, 3 * p0, M)
        assert pw2 == pytest.approx(3 * pw1, rel=1e-9)

    def test_max_p_under_total_power(self, machine):
        costs = NBodyCosts(interaction_flops=10.0)
        n, M = 1e6, 1e4
        p0 = costs.p_min(n, M)
        p1w = average_power(costs, machine, n, p0, M) / p0
        cap = max_p_under_total_power(costs, machine, n, M, total_power=10 * p0 * p1w)
        assert cap == pytest.approx(
            min(10 * p0, costs.p_max_perfect(n, M)), rel=1e-6
        )

    def test_max_p_infeasible(self, machine):
        costs = NBodyCosts()
        with pytest.raises(ParameterError):
            max_p_under_total_power(costs, machine, 1e6, 1e4, total_power=1e-30)
