"""Copy-on-write payload transport: freeze/view/materialize semantics,
aliasing safety across point-to-point and collectives, and count
bit-identity against the legacy deep-copy transport."""

import numpy as np
import pytest

from repro.exceptions import CommunicatorError
from repro.simmpi import (
    FrozenPayload,
    copy_payload,
    freeze_payload,
    materialize,
    payload_words,
    run_spmd,
)


class WordyThing:
    """Payload exposing the __payload_words__ hook."""

    def __init__(self, words=3):
        self._words = words

    def __payload_words__(self):
        return self._words


class TestFrozenPayload:
    def test_freeze_snapshots_and_is_read_only(self):
        src = np.arange(6, dtype=float)
        frozen = freeze_payload(src)
        src[:] = -1  # later sender mutation must not leak into the snapshot
        view = frozen.view()
        assert np.array_equal(view, [0, 1, 2, 3, 4, 5])
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[:] = 0

    def test_words_cached_and_consistent(self):
        obj = {"a": np.zeros((3, 4)), "b": [1, 2.5, np.float64(1.0)]}
        frozen = freeze_payload(obj)
        assert frozen.words == payload_words(obj)
        assert payload_words(frozen) == frozen.words

    def test_freeze_is_idempotent(self):
        frozen = freeze_payload(np.arange(4))
        assert FrozenPayload.freeze(frozen) is frozen

    def test_refreezing_a_delivered_view_does_not_copy(self):
        frozen = freeze_payload(np.arange(8))
        view = frozen.view()
        refrozen = freeze_payload(view)
        assert np.shares_memory(refrozen.view(), view)

    def test_user_read_only_array_is_still_copied(self):
        # A read-only array the *user* froze could be flipped writable
        # again through its base, so it must not be adopted.
        arr = np.arange(5)
        arr.flags.writeable = False
        frozen = freeze_payload(arr)
        assert not np.shares_memory(frozen.view(), arr)

    def test_materialize_copies_only_read_only_data(self):
        frozen = freeze_payload(np.arange(4))
        view = frozen.view()
        mat = materialize(view)
        assert mat.flags.writeable
        assert not np.shares_memory(mat, view)
        writable = np.arange(4)
        assert materialize(writable) is writable

    def test_materialize_recurses_into_containers(self):
        frozen = freeze_payload({"x": [np.arange(3), 7]})
        out = materialize(frozen)
        out["x"][0][:] = -1
        assert np.array_equal(out["x"][0], [-1, -1, -1])

    def test_scalars_and_strings_pass_through(self):
        for obj in (None, True, 3, 2.5, 1 + 2j, "hi", b"raw"):
            assert freeze_payload(obj).view() == obj if obj is not None else True

    def test_hook_payloads_are_deep_copied_per_freeze(self):
        thing = WordyThing()
        frozen = freeze_payload(thing)
        assert frozen.words == 3
        assert frozen.view() is not thing


class TestRejectUnknownTypes:
    """copy_payload and payload_words reject the same types."""

    def test_both_reject_plain_objects(self):
        with pytest.raises(CommunicatorError):
            payload_words(object())
        with pytest.raises(CommunicatorError):
            copy_payload(object())
        with pytest.raises(CommunicatorError):
            freeze_payload(object())

    def test_both_accept_hook_objects(self):
        thing = WordyThing(words=9)
        assert payload_words(thing) == 9
        assert copy_payload(thing) is not thing


def _counts(report):
    return report.counts_signature()


class TestAliasingSafety:
    """A receiver can never corrupt the sender or sibling receivers."""

    def test_send_then_sender_mutation_invisible_to_receiver(self):
        def prog(comm):
            if comm.rank == 0:
                data = np.arange(4, dtype=float)
                comm.send(data, 1)
                data[:] = -1  # after the send: must not reach rank 1
                comm.barrier()
                return None
            buf = comm.recv(0)
            comm.barrier()
            return buf.copy()

        out = run_spmd(2, prog)
        assert np.array_equal(out.results[1], [0, 1, 2, 3])

    def test_bcast_receiver_mutation_invisible_to_all(self):
        def prog(comm):
            data = np.arange(8, dtype=float) if comm.rank == 0 else None
            got = comm.bcast(data, root=0)
            if comm.rank == 2:
                mine = materialize(got)
                mine[:] = -99
            comm.barrier()
            return np.asarray(got).sum()

        out = run_spmd(4, prog)
        assert all(r == 28.0 for r in out.results)

    def test_allgather_sibling_mutation_invisible(self):
        def prog(comm):
            blocks = comm.allgather(np.full(4, comm.rank, dtype=float))
            if comm.rank == 1:
                corrupted = materialize(blocks[0])
                corrupted[:] = 1e9
            comm.barrier()
            return [b.sum() for b in blocks]

        out = run_spmd(4, prog)
        for sums in out.results:
            assert sums == [0.0, 4.0, 8.0, 12.0]

    def test_received_view_writes_raise(self):
        def prog(comm):
            got = comm.bcast(np.arange(4) if comm.rank == 0 else None, root=0)
            if comm.rank != 0:
                with pytest.raises(ValueError):
                    got[0] = 5
            return int(np.asarray(got)[0])

        out = run_spmd(4, prog)
        assert all(r == 0 for r in out.results)


class TestCountsBitIdentical:
    """CoW and deep-copy transports must meter exactly the same F/W/S."""

    def _compare(self, size, program, *args, **kwargs):
        cow = run_spmd(size, program, *args, payload_mode="cow", **kwargs)
        copy = run_spmd(size, program, *args, payload_mode="copy", **kwargs)
        assert _counts(cow.report) == _counts(copy.report)
        for got_cow, got_copy in zip(cow.results, copy.results):
            np.testing.assert_array_equal(
                np.asarray(got_cow), np.asarray(got_copy)
            )
        return cow

    def test_cannon(self):
        from repro.algorithms.cannon import cannon_matmul

        rng = np.random.default_rng(7)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        self._compare(4, cannon_matmul, a, b)

    def test_summa(self):
        from repro.algorithms.summa import summa_matmul

        rng = np.random.default_rng(8)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        self._compare(4, summa_matmul, a, b)

    def test_matmul_25d(self):
        from repro.algorithms.matmul25d import matmul_25d

        rng = np.random.default_rng(9)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        self._compare(8, matmul_25d, a, b, 2)

    def test_caps(self):
        from repro.algorithms.caps import caps_assemble, caps_matmul

        rng = np.random.default_rng(10)
        n = 14
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        cow = self._compare(7, caps_matmul, a, b, 0)
        c = caps_assemble(list(cow.results), n, 7, 0)
        assert np.allclose(c, a @ b)

    def test_collective_mix(self):
        def prog(comm):
            v = comm.bcast(np.arange(16.0) if comm.rank == 0 else None)
            s = comm.allreduce(float(np.asarray(v).sum()))
            parts = comm.allgather(np.full(2, comm.rank))
            comm.barrier()
            return s + sum(p.sum() for p in parts)

        self._compare(8, prog)
