"""Tests for the numeric (matmul/Strassen) Section-V optimizer."""

import math

import pytest

from repro.core.costs import ClassicalMatMulCosts, NBodyCosts, StrassenMatMulCosts
from repro.core.optimize import NBodyOptimizer
from repro.core.optimize_numeric import NumericOptimizer
from repro.exceptions import InfeasibleError, ParameterError


@pytest.fixture
def num(machine):
    return NumericOptimizer(ClassicalMatMulCosts(), machine)


@pytest.fixture
def num_strassen(machine):
    return NumericOptimizer(StrassenMatMulCosts(), machine)


N = 1e5


class TestMinEnergy:
    def test_local_optimality(self, num):
        run = num.min_energy(N)
        e0 = run.energy
        for factor in (0.7, 0.9, 1.1, 1.4):
            M = run.M * factor
            if M <= num.machine.memory_words:
                assert num.energy_at(N, M) >= e0 * (1 - 1e-6)

    def test_against_grid_search(self, num):
        import numpy as np

        run = num.min_energy(N)
        grid = np.geomspace(1.0, num.machine.memory_words, 2000)
        brute = min(num.energy_at(N, M) for M in grid)
        assert run.energy <= brute * (1 + 1e-6)

    def test_strassen_variant(self, num_strassen):
        run = num_strassen.min_energy(N)
        assert run.energy > 0
        assert run.M <= num_strassen.machine.memory_words

    def test_agrees_with_closed_form_for_nbody(self, machine):
        """Sanity: the numeric machinery applied to the n-body cost model
        must land on the analytic M0/E*."""
        f = 10.0
        num = NumericOptimizer(NBodyCosts(interaction_flops=f), machine)
        analytic = NBodyOptimizer(machine, interaction_flops=f)
        n = 1e6
        run = num.min_energy(n)
        assert run.energy == pytest.approx(analytic.min_energy(n), rel=1e-4)
        assert run.M == pytest.approx(analytic.optimal_memory(), rel=1e-2)

    def test_invalid(self, num):
        with pytest.raises(ParameterError):
            num.min_energy(0)


class TestMinEnergyGivenRuntime:
    def test_loose_deadline_matches_global(self, num):
        free = num.min_energy(N)
        run = num.min_energy_given_runtime(N, free.time * 1e6)
        assert run.energy <= free.energy * (1 + 1e-6)

    def test_deadline_respected(self, num):
        fast = num.fastest_time_at(N, num.machine.memory_words)[0]
        t_max = fast * 10
        run = num.min_energy_given_runtime(N, t_max)
        assert run.time <= t_max * (1 + 1e-6)

    def test_impossible_deadline(self, num):
        with pytest.raises(InfeasibleError):
            num.min_energy_given_runtime(N, 1e-300)

    def test_tight_deadline_costs_more(self, num):
        free = num.min_energy(N)
        fast = num.fastest_time_at(N, free.M)[0]
        tight = num.min_energy_given_runtime(N, fast / 10)
        assert tight.energy >= free.energy * (1 - 1e-9)


class TestMinRuntimeGivenEnergy:
    def test_budget_respected(self, num):
        e_min = num.min_energy(N).energy
        run = num.min_runtime_given_energy(N, e_min * 1.5)
        assert run.energy <= e_min * 1.5 * (1 + 1e-6)

    def test_infeasible_budget(self, num):
        e_min = num.min_energy(N).energy
        with pytest.raises(InfeasibleError):
            num.min_runtime_given_energy(N, e_min * 0.5)

    def test_more_budget_weakly_faster(self, num):
        e_min = num.min_energy(N).energy
        r1 = num.min_runtime_given_energy(N, e_min * 1.2)
        r2 = num.min_runtime_given_energy(N, e_min * 3.0)
        assert r2.time <= r1.time * (1 + 1e-9)


class TestPowerBudget:
    def test_budget_respected(self, num):
        base = num.min_energy(N)
        p1 = num.average_power(N, base.p, base.M) / base.p
        budget = p1 * base.p * 4
        run = num.min_runtime_given_total_power(N, budget)
        assert num.average_power(N, run.p, run.M) <= budget * (1 + 1e-6)

    def test_infeasible_budget(self, num):
        with pytest.raises(InfeasibleError):
            num.min_runtime_given_total_power(N, 1e-30)

    def test_more_power_weakly_faster(self, num):
        base = num.min_energy(N)
        p_total = num.average_power(N, base.p, base.M)
        r1 = num.min_runtime_given_total_power(N, p_total * 2)
        r2 = num.min_runtime_given_total_power(N, p_total * 20)
        assert r2.time <= r1.time * (1 + 1e-9)


class TestEfficiency:
    def test_positive(self, num):
        assert num.gflops_per_watt_optimal(N) > 0

    def test_strassen_beats_classical_flops_per_joule(self, machine):
        """At equal n, Strassen's optimal flops/J is computed over fewer
        total flops but also less energy; the ratio total_flops/E* uses
        each algorithm's own flop count, so both are internally
        consistent (> 0)."""
        c = NumericOptimizer(ClassicalMatMulCosts(), machine)
        s = NumericOptimizer(StrassenMatMulCosts(), machine)
        assert c.flops_per_joule_optimal(N) > 0
        assert s.flops_per_joule_optimal(N) > 0

    def test_strassen_min_energy_below_classical(self, machine):
        """Strassen should never need more energy than classical for the
        same problem at large n (fewer flops, fewer words)."""
        n = 1e6
        c = NumericOptimizer(ClassicalMatMulCosts(), machine).min_energy(n)
        s = NumericOptimizer(StrassenMatMulCosts(), machine).min_energy(n)
        assert s.energy < c.energy
