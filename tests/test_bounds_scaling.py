"""Tests for communication lower bounds and the strong-scaling analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    effective_bandwidth_bound,
    fft_sequential_bandwidth_lower_bound,
    matmul_memory_dependent_bound,
    matmul_memory_independent_bound,
    nbody_bandwidth_lower_bound,
    parallel_bandwidth_lower_bound,
    sequential_bandwidth_lower_bound,
    sequential_latency_lower_bound,
    strassen_memory_independent_bound,
)
from repro.core.costs import (
    OMEGA_STRASSEN,
    ClassicalMatMulCosts,
    NBodyCosts,
    StrassenMatMulCosts,
)
from repro.core.scaling import (
    bandwidth_cost_times_p,
    in_perfect_scaling_range,
    perfect_scaling_range,
    saturation_p,
    verify_perfect_scaling,
)
from repro.exceptions import ParameterError

from conftest import machine_strategy


class TestSequentialBounds:
    def test_flop_term_dominates(self):
        # F/sqrt(M) > I+O
        w = sequential_bandwidth_lower_bound(F=1e9, M=1e4, io_words=100.0)
        assert w == pytest.approx(1e9 / 100.0)

    def test_io_term_dominates(self):
        w = sequential_bandwidth_lower_bound(F=100.0, M=1e8, io_words=1e6)
        assert w == pytest.approx(1e6)

    def test_latency_divides_by_m(self):
        s = sequential_latency_lower_bound(F=1e9, M=1e4, m=128.0)
        assert s == pytest.approx(1e9 / 100.0 / 128.0)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            sequential_bandwidth_lower_bound(F=-1, M=100)
        with pytest.raises(ParameterError):
            sequential_bandwidth_lower_bound(F=1, M=0)


class TestParallelBound:
    def test_positive_case(self):
        w = parallel_bandwidth_lower_bound(F=1e9, M=1e4, io_words=100.0)
        assert w == pytest.approx(1e9 / 100.0 - 100.0)

    def test_clamped_at_zero(self):
        # Big I/O can make zero-communication conceivable.
        assert parallel_bandwidth_lower_bound(F=100.0, M=1e8, io_words=1e6) == 0.0


class TestMatmulBounds:
    def test_memory_dependent(self):
        assert matmul_memory_dependent_bound(1000, 8, 1e4) == pytest.approx(
            1e9 / (8 * 100)
        )

    def test_memory_independent(self):
        assert matmul_memory_independent_bound(1000, 64) == pytest.approx(1e6 / 16)

    def test_strassen_independent(self):
        n, p = 1000.0, 64.0
        w = strassen_memory_independent_bound(n, p)
        assert w == pytest.approx(n**2 / p ** (2 / OMEGA_STRASSEN))

    def test_strassen_bound_below_classical(self):
        # Strassen's memory-independent bound n^2/p^(2/omega0) is smaller
        # than classical's n^2/p^(2/3) (2/omega0 > 2/3) — it communicates
        # less, but its perfect-scaling knee comes earlier (see
        # TestFigure3Curve.test_strassen_knee_earlier).
        n, p = 1000.0, 64.0
        assert strassen_memory_independent_bound(n, p) < (
            matmul_memory_independent_bound(n, p)
        )

    @given(
        st.floats(min_value=100, max_value=1e5),
        st.floats(min_value=1, max_value=1e6),
        st.floats(min_value=10, max_value=1e9),
    )
    def test_effective_bound_is_max(self, n, p, M):
        eff = effective_bandwidth_bound(n, p, M, omega0=3.0)
        assert eff == pytest.approx(
            max(matmul_memory_dependent_bound(n, p, M),
                matmul_memory_independent_bound(n, p))
        )

    @given(
        st.floats(min_value=100, max_value=1e5),
        st.floats(min_value=2, max_value=1e4),
    )
    def test_upper_bounds_dominate_lower_bounds(self, n, p):
        """The 2.5D cost expression attains (>=) the bound at every M."""
        costs = ClassicalMatMulCosts()
        for M in (n**2 / p, 2 * n**2 / p, n**2 / p ** (2 / 3)):
            assert costs.words(n, p, M) >= (
                matmul_memory_dependent_bound(n, p, M) * (1 - 1e-12)
            )


class TestNBodyAndFFTBounds:
    def test_nbody(self):
        assert nbody_bandwidth_lower_bound(1e4, 16, 100) == pytest.approx(
            1e8 / 1600
        )

    def test_nbody_matches_cost_model(self):
        costs = NBodyCosts()
        n, p, M = 1e4, 16.0, 100.0
        assert costs.words(n, p, M) == pytest.approx(
            nbody_bandwidth_lower_bound(n, p, M)
        )

    def test_fft_sequential(self):
        w = fft_sequential_bandwidth_lower_bound(2**20, 2**10)
        assert w == pytest.approx(2**20 * 20 / 10)

    def test_fft_invalid(self):
        with pytest.raises(ParameterError):
            fft_sequential_bandwidth_lower_bound(1, 16)


class TestPerfectScalingRange:
    def test_matmul_range(self):
        costs = ClassicalMatMulCosts()
        rng = perfect_scaling_range(costs, 1000.0, 1e4)
        assert rng.p_min == pytest.approx(100.0)
        assert rng.p_max == pytest.approx(1000.0**3 / 1e6)
        assert rng.width_factor == pytest.approx(10.0)

    def test_contains(self):
        costs = ClassicalMatMulCosts()
        rng = perfect_scaling_range(costs, 1000.0, 1e4)
        assert rng.contains(rng.p_min)
        assert rng.contains(rng.p_max)
        assert not rng.contains(rng.p_min / 2)
        assert not rng.contains(rng.p_max * 2)

    def test_width_is_max_replication(self):
        # p_max/p_min = (n^2/M)^(1/2) = maximal c for classical matmul.
        costs = ClassicalMatMulCosts()
        n, M = 1000.0, 1e4
        rng = perfect_scaling_range(costs, n, M)
        assert rng.width_factor == pytest.approx(math.sqrt(n**2 / M))

    def test_membership_helper(self):
        costs = NBodyCosts()
        assert in_perfect_scaling_range(costs, 1e4, 500.0, 100.0)
        assert not in_perfect_scaling_range(costs, 1e4, 50.0, 100.0)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            perfect_scaling_range(ClassicalMatMulCosts(), 0, 100)


class TestFigure3Curve:
    def test_flat_inside_range(self):
        n, cap = 1000.0, 1e4
        knee = saturation_p(n, cap)
        v1 = bandwidth_cost_times_p(n, knee / 8, cap)
        v2 = bandwidth_cost_times_p(n, knee / 2, cap)
        assert v1 == pytest.approx(v2)

    def test_grows_past_knee(self):
        n, cap = 1000.0, 1e4
        knee = saturation_p(n, cap)
        v_knee = bandwidth_cost_times_p(n, knee, cap)
        v_past = bandwidth_cost_times_p(n, 8 * knee, cap)
        assert v_past == pytest.approx(v_knee * 2.0, rel=1e-9)  # (8)^(1/3)

    def test_strassen_knee_earlier(self):
        n, cap = 1000.0, 1e4
        assert saturation_p(n, cap, omega0=OMEGA_STRASSEN) < saturation_p(n, cap)

    def test_strassen_growth_rate(self):
        n, cap = 1000.0, 1e4
        omega = OMEGA_STRASSEN
        knee = saturation_p(n, cap, omega0=omega)
        v_knee = bandwidth_cost_times_p(n, knee, cap, omega0=omega)
        v_past = bandwidth_cost_times_p(n, 8 * knee, cap, omega0=omega)
        assert v_past / v_knee == pytest.approx(8 ** (1 - 2 / omega), rel=1e-9)

    def test_continuity_at_knee(self):
        n, cap = 1000.0, 1e4
        knee = saturation_p(n, cap)
        below = bandwidth_cost_times_p(n, knee * (1 - 1e-9), cap)
        above = bandwidth_cost_times_p(n, knee * (1 + 1e-9), cap)
        assert below == pytest.approx(above, rel=1e-6)


class TestVerifyPerfectScaling:
    @given(machine_strategy())
    @settings(max_examples=25)
    def test_certificate_inside_range(self, m):
        costs = ClassicalMatMulCosts()
        n = 1e4
        M = min(m.memory_words, n**2 / 4)
        rng = perfect_scaling_range(costs, n, M)
        ps = [rng.p_min, math.sqrt(rng.p_min * rng.p_max), rng.p_max]
        report = verify_perfect_scaling(costs, m, n, M, ps)
        assert report.is_perfect(tol=1e-6)

    def test_rejects_out_of_range_p(self, machine):
        costs = ClassicalMatMulCosts()
        n = 1e4
        M = min(machine.memory_words, n**2 / 4)
        rng = perfect_scaling_range(costs, n, M)
        with pytest.raises(ParameterError):
            verify_perfect_scaling(costs, machine, n, M, [rng.p_min, rng.p_max * 10])

    def test_needs_two_points(self, machine):
        with pytest.raises(ParameterError):
            verify_perfect_scaling(
                ClassicalMatMulCosts(), machine, 1e4, 1e6, [100.0]
            )

    def test_strassen_scaling(self, machine):
        costs = StrassenMatMulCosts()
        n = 1e4
        M = min(machine.memory_words, n**2 / 4)
        rng = perfect_scaling_range(costs, n, M)
        report = verify_perfect_scaling(
            costs, machine, n, M, [rng.p_min, rng.p_max]
        )
        assert report.is_perfect(tol=1e-6)

    def test_nbody_scaling(self, machine):
        costs = NBodyCosts(interaction_flops=20.0)
        n = 1e6
        M = min(machine.memory_words, n / 4)
        rng = perfect_scaling_range(costs, n, M)
        report = verify_perfect_scaling(
            costs, machine, n, M, [rng.p_min, rng.p_max]
        )
        assert report.is_perfect(tol=1e-6)
